// The guard's watch buffer (Section 4.2.1, "Local Monitoring").
//
// Two kinds of state, matching how LITEWORP uses overheard control traffic:
//
//  * Transmit records — "I heard node X transmit control packet F". Matched
//    NON-destructively: several neighbors may legitimately forward the same
//    flooded REQ announcing X as previous hop, and each must find the
//    record. Records expire silently after a TTL.
//
//  * Drop watches — "X handed REP F to A; A must forward it within delta".
//    Created only for unicast REPs (a flooded REQ has no single obligated
//    forwarder thanks to duplicate suppression, so accusing someone of
//    dropping one would be noise). Cleared when the forward is overheard;
//    expiry is a drop accusation against A.
//
// The fabrication check is the inverse lookup: overhearing A forward F with
// announced previous hop X, while holding no transmit record (F, X), means
// A fabricated the claim — the signature of a wormhole replay.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "sim/simulator.h"
#include "util/arena.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace lw::lite {

/// (packet flow, node) composite key.
struct FlowNodeKey {
  FlowKey flow;
  NodeId node = kInvalidNode;
  friend bool operator==(const FlowNodeKey&, const FlowNodeKey&) = default;
};

struct FlowNodeKeyHash {
  std::size_t operator()(const FlowNodeKey& k) const noexcept {
    return std::hash<FlowKey>()(k.flow) * 0x9E3779B97F4A7C15ull + k.node;
  }
};

/// (packet flow, from, to) composite key for drop watches.
struct LinkWatchKey {
  FlowKey flow;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  friend bool operator==(const LinkWatchKey&, const LinkWatchKey&) = default;
};

struct LinkWatchKeyHash {
  std::size_t operator()(const LinkWatchKey& k) const noexcept {
    std::size_t h = std::hash<FlowKey>()(k.flow);
    h = h * 0x9E3779B97F4A7C15ull + k.from;
    h = h * 0x9E3779B97F4A7C15ull + k.to;
    return h;
  }
};

class WatchBuffer {
 public:
  /// One transmitter of a flow, with its record's expiry.
  struct TransmitRecord {
    NodeId node = kInvalidNode;
    Time expiry = 0.0;
  };
  /// Remembers that `node` transmitted `flow`; lives until now + ttl.
  void record_transmit(const FlowKey& flow, NodeId node, Time now,
                       Duration ttl);

  /// True if a live transmit record (flow, node) exists.
  bool has_transmit(const FlowKey& flow, NodeId node, Time now);

  /// True if ANY live transmit record exists for `flow` — i.e. this guard
  /// has heard the flooded packet from someone. A forward of a flow the
  /// guard never heard at all is the wormhole-replay signature.
  bool has_any_transmit(const FlowKey& flow, Time now);

  /// Adds a drop watch; the caller schedules the expiry callback and owns
  /// the accusation logic. Returns false if an identical watch exists.
  bool add_drop_watch(const FlowKey& flow, NodeId from, NodeId to,
                      Time deadline, sim::EventHandle expiry);

  /// Clears the watch (the expected forward was overheard). Cancels the
  /// expiry event. Returns true if a watch existed.
  bool clear_drop_watch(const FlowKey& flow, NodeId from, NodeId to);

  /// Removes the watch when its expiry fires; returns true if it was still
  /// armed (i.e. the forward was never overheard).
  bool take_expired_drop_watch(const FlowKey& flow, NodeId from, NodeId to);

  /// Clears every watch whose obligated forwarder is `to` (the node just
  /// audibly refused a route — e.g. broadcast a RERR — so it is not a
  /// silent dropper). Returns the number cleared.
  std::size_t clear_drop_watches_to(NodeId to);

  std::size_t transmit_records() const { return transmit_pairs_; }
  std::size_t drop_watches() const { return watches_.size(); }
  std::size_t peak_entries() const { return peak_entries_; }

  /// Paper cost model: 20 bytes per watch-buffer entry.
  std::size_t storage_bytes() const {
    return 20 * (transmit_pairs_ + watches_.size());
  }

  /// Drops every record and cancels every armed drop-watch expiry (the
  /// guard crashed; a post-reboot accusation from pre-crash state would be
  /// a false positive). peak_entries is preserved for the cost report.
  void clear();

 private:
  struct DropWatch {
    Time deadline;
    sim::EventHandle expiry;
  };

  /// All transmit records of one flow, grouped so that record/lookup cost
  /// one hash probe instead of one per (flow, node) composite. The node
  /// list is tiny (the handful of neighbors that forwarded this flood), so
  /// a linear scan beats a second hash table.
  struct FlowRecord {
    /// max over all recorded expiries — backs has_any_transmit.
    Time flow_expiry = 0.0;
    util::PoolVector<TransmitRecord> nodes;
  };

  void purge_transmits(Time now);
  void note_size();

  /// Guards churn one record per overheard control frame; the maps and the
  /// per-flow node vectors recycle through the thread pool arena.
  util::PoolUnorderedMap<FlowKey, FlowRecord> transmits_;
  util::PoolUnorderedMap<LinkWatchKey, DropWatch, LinkWatchKeyHash> watches_;
  /// Live (flow, node) pair count — the paper's per-entry storage unit.
  std::size_t transmit_pairs_ = 0;
  std::size_t peak_entries_ = 0;
  std::size_t purge_tick_ = 0;
};

}  // namespace lw::lite
