// Deterministic fault plan: the declarative description of every adversity
// a run injects (Section V-VI robustness analysis territory).
//
// A FaultPlan is part of ExperimentConfig, so faults are seeded and
// reproducible like everything else: the injector schedules each fault as
// an ordinary simulator event, traces stay byte-identical per seed at any
// thread count, and an empty plan is indistinguishable from no fault
// subsystem at all (zero extra events, zero extra RNG draws).
#pragma once

#include <cstddef>
#include <vector>

#include "util/ids.h"
#include "util/sim_time.h"

namespace lw::fault {

/// Scheduled node crash: at `at` the radio goes silent, every timer is
/// cancelled and all protocol state is wiped. With `recover_at` >= 0 the
/// node reboots there and re-enters through the dynamic-join protocol,
/// exactly like a late-deployed node.
struct CrashFault {
  NodeId node = kInvalidNode;
  Time at = 0.0;
  /// < 0 means the node never comes back.
  Time recover_at = -1.0;
};

/// Transient link degradation: during [from, until) frames between `a` and
/// `b` (both directions) suffer `extra_loss` on top of the channel's P_C.
/// 1.0 is a hard outage (the signal simply never arrives).
struct LinkFault {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  Time from = 0.0;
  Time until = 0.0;
  double extra_loss = 1.0;
};

/// Guard compromise / framing: starting at `start`, `guards` of the
/// victim's honest neighbors turn coat and emit authenticated false alerts
/// accusing the victim — the attack the paper's gamma (detection
/// confidence) bar is designed to absorb. Each compromised guard sends
/// `alerts_per_guard` alerts spaced `gap` apart.
struct FramingFault {
  NodeId victim = kInvalidNode;
  std::size_t guards = 1;
  Time start = 0.0;
  int alerts_per_guard = 3;
  Duration gap = 5.0;
};

/// In-flight corruption: during [from, until), frames arriving at `node`
/// have their authentication tag bytes flipped with `probability`. The
/// receiver stack must shed these at HMAC verification — never crash in a
/// parser.
struct CorruptionFault {
  NodeId node = kInvalidNode;
  Time from = 0.0;
  Time until = 0.0;
  double probability = 1.0;
};

struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<LinkFault> links;
  std::vector<FramingFault> framings;
  std::vector<CorruptionFault> corruptions;

  // ---- Hardening knobs (active whenever the plan is non-empty) ----
  /// A first-hop neighbor not heard from for this long is aged out of the
  /// table (and becomes re-challengeable via dynamic join). Generous by
  /// default: at lambda = 1/20 s a live neighbor is silent for 120 s with
  /// probability well under 1%.
  Duration neighbor_age_timeout = 120.0;
  /// Aging sweep cadence.
  Duration neighbor_age_sweep_interval = 15.0;

  /// True when the plan injects nothing; the zero-cost-when-disabled
  /// guarantee hangs off this test.
  bool empty() const {
    return crashes.empty() && links.empty() && framings.empty() &&
           corruptions.empty();
  }

  /// Rejects plans that reference nodes outside [0, node_count), overlap
  /// crash windows on the same node, or carry nonsensical windows and
  /// probabilities. Throws std::invalid_argument with actionable messages.
  void validate(std::size_t node_count) const;
};

}  // namespace lw::fault
