#include "fault/injector.h"

#include "util/logging.h"

namespace lw::fault {

Injector::Injector(sim::Simulator& simulator, obs::Recorder* recorder,
                   const FaultPlan& plan, FaultHost& host)
    : simulator_(simulator), recorder_(recorder), plan_(plan), host_(host) {}

void Injector::emit(obs::EventKind kind, NodeId node, NodeId peer,
                    double value) {
  if (recorder_ == nullptr || !recorder_->wants(obs::Layer::kFault)) return;
  obs::Event event;
  event.t = simulator_.now();
  event.kind = kind;
  event.node = node;
  event.peer = peer;
  event.value = value;
  recorder_->emit(event);
}

void Injector::arm() {
  if (armed_ || plan_.empty()) return;
  armed_ = true;

  for (const CrashFault& crash : plan_.crashes) {
    simulator_.schedule_at(crash.at, [this, crash] {
      LW_INFO << "fault: node " << crash.node << " crashed at t="
              << simulator_.now();
      host_.crash_node(crash.node);
      emit(obs::EventKind::kFltCrash, crash.node, kInvalidNode,
           crash.recover_at);
    });
    if (crash.recover_at >= 0.0) {
      simulator_.schedule_at(crash.recover_at, [this, crash] {
        LW_INFO << "fault: node " << crash.node << " recovered at t="
                << simulator_.now();
        host_.recover_node(crash.node);
        emit(obs::EventKind::kFltRecover, crash.node, kInvalidNode,
             simulator_.now() - crash.at);
      });
    }
  }

  for (const LinkFault& link : plan_.links) {
    simulator_.schedule_at(link.from, [this, link] {
      host_.set_link_fault(link.a, link.b, link.extra_loss);
      emit(obs::EventKind::kFltLinkDown, link.a, link.b, link.extra_loss);
    });
    simulator_.schedule_at(link.until, [this, link] {
      host_.clear_link_fault(link.a, link.b);
      emit(obs::EventKind::kFltLinkUp, link.a, link.b, 0.0);
    });
  }

  for (const FramingFault& framing : plan_.framings) {
    simulator_.schedule_at(framing.start, [this, framing] {
      // Guard selection is deferred to compromise time so a crashed
      // neighbor is never conscripted; the host's pick is deterministic.
      const std::vector<NodeId> guards =
          host_.framing_guards(framing.victim, framing.guards);
      if (guards.size() < framing.guards) {
        LW_WARN << "fault: framing of node " << framing.victim
                << " wanted " << framing.guards << " guards, found only "
                << guards.size();
      }
      for (NodeId guard : guards) {
        for (int shot = 0; shot < framing.alerts_per_guard; ++shot) {
          const Duration delay = static_cast<double>(shot) * framing.gap;
          simulator_.schedule(delay, [this, guard, framing] {
            host_.emit_false_alert(guard, framing.victim);
            emit(obs::EventKind::kFltFrame, guard, framing.victim, 0.0);
          });
        }
      }
    });
  }

  for (const CorruptionFault& corruption : plan_.corruptions) {
    simulator_.schedule_at(corruption.from, [this, corruption] {
      host_.set_corruption(corruption.node, corruption.probability);
    });
    simulator_.schedule_at(corruption.until, [this, corruption] {
      host_.clear_corruption(corruption.node);
    });
  }
}

}  // namespace lw::fault
