#include "fault/plan.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace lw::fault {
namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument("FaultPlan: " + what);
}

void check_node(const char* role, NodeId node, std::size_t node_count,
                std::size_t entry) {
  if (node < node_count) return;
  std::ostringstream out;
  out << role << " entry " << entry << " references node " << node
      << " but the network only has nodes 0.." << node_count - 1;
  reject(out.str());
}

}  // namespace

void FaultPlan::validate(std::size_t node_count) const {
  if (node_count == 0 && !empty()) {
    reject("non-empty plan for an empty network");
  }
  if (neighbor_age_timeout <= 0.0) {
    reject("neighbor_age_timeout must be positive");
  }
  if (neighbor_age_sweep_interval <= 0.0) {
    reject("neighbor_age_sweep_interval must be positive");
  }

  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const CrashFault& crash = crashes[i];
    check_node("crash", crash.node, node_count, i);
    if (crash.at < 0.0) {
      std::ostringstream out;
      out << "crash entry " << i << " (node " << crash.node
          << ") has negative crash time " << crash.at;
      reject(out.str());
    }
    if (crash.recover_at >= 0.0 && crash.recover_at <= crash.at) {
      std::ostringstream out;
      out << "crash entry " << i << " (node " << crash.node
          << ") recovers at " << crash.recover_at
          << " which is not after its crash at " << crash.at
          << " (use recover_at < 0 for a permanent crash)";
      reject(out.str());
    }
    // Overlap check against every other crash window of the same node:
    // window i is [at, recover_at) or [at, inf) when permanent.
    for (std::size_t j = i + 1; j < crashes.size(); ++j) {
      const CrashFault& other = crashes[j];
      if (other.node != crash.node) continue;
      const double end_i =
          crash.recover_at < 0.0 ? std::numeric_limits<double>::infinity()
                                 : crash.recover_at;
      const double end_j =
          other.recover_at < 0.0 ? std::numeric_limits<double>::infinity()
                                 : other.recover_at;
      if (std::max(crash.at, other.at) < std::min(end_i, end_j)) {
        std::ostringstream out;
        out << "crash entries " << i << " and " << j
            << " overlap on node " << crash.node
            << " (a node cannot crash while already down; stagger the "
               "windows)";
        reject(out.str());
      }
    }
  }

  for (std::size_t i = 0; i < links.size(); ++i) {
    const LinkFault& link = links[i];
    check_node("link", link.a, node_count, i);
    check_node("link", link.b, node_count, i);
    if (link.a == link.b) {
      std::ostringstream out;
      out << "link entry " << i << " connects node " << link.a
          << " to itself";
      reject(out.str());
    }
    if (link.from < 0.0 || link.until <= link.from) {
      std::ostringstream out;
      out << "link entry " << i << " has an empty or negative window ["
          << link.from << ", " << link.until << ")";
      reject(out.str());
    }
    if (link.extra_loss <= 0.0 || link.extra_loss > 1.0) {
      std::ostringstream out;
      out << "link entry " << i << " extra_loss " << link.extra_loss
          << " must be in (0, 1] (1 = hard outage)";
      reject(out.str());
    }
  }

  for (std::size_t i = 0; i < framings.size(); ++i) {
    const FramingFault& framing = framings[i];
    check_node("framing", framing.victim, node_count, i);
    if (framing.guards == 0) {
      std::ostringstream out;
      out << "framing entry " << i << " compromises zero guards";
      reject(out.str());
    }
    if (framing.start < 0.0) {
      std::ostringstream out;
      out << "framing entry " << i << " has negative start time "
          << framing.start;
      reject(out.str());
    }
    if (framing.alerts_per_guard < 1) {
      std::ostringstream out;
      out << "framing entry " << i << " must send at least one alert per "
          << "guard";
      reject(out.str());
    }
    if (framing.gap < 0.0) {
      std::ostringstream out;
      out << "framing entry " << i << " has negative alert gap "
          << framing.gap;
      reject(out.str());
    }
  }

  for (std::size_t i = 0; i < corruptions.size(); ++i) {
    const CorruptionFault& corruption = corruptions[i];
    check_node("corruption", corruption.node, node_count, i);
    if (corruption.from < 0.0 || corruption.until <= corruption.from) {
      std::ostringstream out;
      out << "corruption entry " << i << " has an empty or negative window ["
          << corruption.from << ", " << corruption.until << ")";
      reject(out.str());
    }
    if (corruption.probability <= 0.0 || corruption.probability > 1.0) {
      std::ostringstream out;
      out << "corruption entry " << i << " probability "
          << corruption.probability << " must be in (0, 1]";
      reject(out.str());
    }
  }
}

}  // namespace lw::fault
