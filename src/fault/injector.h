// Fault injector: turns a FaultPlan into ordinary simulator events.
//
// The injector knows the schedule; the host (scenario::Network) knows how
// to actually hurt the system — power a node down, wipe its stack, open a
// link outage in the medium, have a compromised guard emit a false alert.
// This split keeps the fault library free of any dependency on the node /
// scenario layers: it links only against sim and obs.
//
// Every injected fault is announced as an obs event on Layer::kFault
// (flt.crash / flt.recover / flt.link_down / flt.link_up / flt.frame), the
// ground-truth anchors the forensic tooling classifies against — exactly
// how atk.spawn anchors attack incidents today.
#pragma once

#include <vector>

#include "fault/plan.h"
#include "obs/recorder.h"
#include "sim/simulator.h"

namespace lw::fault {

/// The mutation surface the injector drives. Implemented by the scenario
/// layer (Network).
class FaultHost {
 public:
  virtual ~FaultHost() = default;

  /// Powers `node` down: radio silenced, timers dead, state wiped.
  virtual void crash_node(NodeId node) = 0;

  /// Reboots `node`; it re-enters through the dynamic-join path.
  virtual void recover_node(NodeId node) = 0;

  /// Opens a per-link outage window (extra_loss of 1 is a hard outage).
  virtual void set_link_fault(NodeId a, NodeId b, double extra_loss) = 0;
  virtual void clear_link_fault(NodeId a, NodeId b) = 0;

  /// Opens / closes an inbound-corruption window at `node`.
  virtual void set_corruption(NodeId node, double probability) = 0;
  virtual void clear_corruption(NodeId node) = 0;

  /// The guards the framing fault compromises: up to `count` honest
  /// neighbors of `victim`, deterministically ordered (ascending id).
  virtual std::vector<NodeId> framing_guards(NodeId victim,
                                             std::size_t count) const = 0;

  /// Has compromised `guard` emit one authenticated false alert accusing
  /// `victim`.
  virtual void emit_false_alert(NodeId guard, NodeId victim) = 0;
};

/// Schedules every fault in `plan` into `simulator`. An empty plan
/// schedules nothing at all — the zero-cost-when-disabled contract.
class Injector {
 public:
  /// `recorder` may be null (no flt.* events are emitted then). All
  /// references must outlive the injector; the injector must outlive the
  /// simulation (scheduled lambdas capture it).
  Injector(sim::Simulator& simulator, obs::Recorder* recorder,
           const FaultPlan& plan, FaultHost& host);

  /// Schedules all fault events. Call once, before the run starts.
  void arm();

 private:
  void emit(obs::EventKind kind, NodeId node, NodeId peer, double value);

  sim::Simulator& simulator_;
  obs::Recorder* recorder_;
  const FaultPlan& plan_;
  FaultHost& host_;
  bool armed_ = false;
};

}  // namespace lw::fault
