// Wormhole tunnel between colluding malicious nodes.
//
// The paper's simulation delivers out-of-band tunneled packets
// instantaneously; packet encapsulation incurs the latency of the multihop
// path between the colluders (but hides the hop count). We model both: the
// coordinator knows the honest-path hop distance between every colluder
// pair (from ground-truth geometry, supplied by the scenario) and delays
// encapsulated deliveries by hops * per_hop_delay. Neither flavor occupies
// the simulated channel — the out-of-band link is by definition a separate
// channel, and encapsulated traffic rides ordinary unicasts whose load is
// negligible at the evaluated rates (documented substitution).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "attack/modes.h"
#include "packet/packet.h"
#include "sim/simulator.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace lw::attack {

struct AttackParams {
  WormholeMode mode = WormholeMode::kOutOfBand;
  /// Attack begins this long into the run (Table 2 experiments: 50 s).
  Time start_time = 50.0;
  /// Endpoints drop all data traffic routed through them once active.
  bool drop_data = true;
  /// Announce a genuine neighbor as previous hop (the "smarter" attacker of
  /// Section 4.2.3); false announces the colluder and is caught by the
  /// two-hop admission check instead of by guards.
  bool smart_prev_hop = true;
  /// Lie about the SAME neighbor every time instead of a random one per
  /// replay. This pins the fabricated link, so only the guards of that one
  /// link collect evidence — the geometry Section 5.1 analyzes (g = 0.51
  /// N_B per link). The default randomized lie spreads evidence over all
  /// the attacker's neighbors and is detected even faster.
  bool fixed_fake_prev = false;
  /// Range multiplier for the high-power mode (transmit and receive).
  double high_power_multiplier = 3.0;
  /// Per-hop forwarding latency of encapsulated tunnel traffic.
  Duration encapsulation_per_hop_delay = 0.02;
};

class MaliciousAgent;

class WormholeCoordinator {
 public:
  WormholeCoordinator(sim::Simulator& simulator, AttackParams params);

  void register_agent(MaliciousAgent* agent);

  /// Ground-truth hop distance between two colluders (encapsulation delay).
  void set_hop_distance(NodeId a, NodeId b, std::size_t hops);

  /// Sends `packet` through the tunnel from `from` to every other colluder.
  void tunnel_to_all(NodeId from, const pkt::Packet& packet);

  /// Sends `packet` through the tunnel to one specific colluder.
  void tunnel_to(NodeId from, NodeId to, const pkt::Packet& packet);

  bool is_colluder(NodeId id) const;
  const AttackParams& params() const { return params_; }
  std::uint64_t tunneled_packets() const { return tunneled_; }
  const std::vector<MaliciousAgent*>& agents() const { return agents_; }

 private:
  Duration tunnel_delay(NodeId a, NodeId b) const;

  sim::Simulator& simulator_;
  AttackParams params_;
  std::vector<MaliciousAgent*> agents_;
  std::unordered_map<std::uint64_t, std::size_t> hop_distance_;
  std::uint64_t tunneled_ = 0;
};

}  // namespace lw::attack
