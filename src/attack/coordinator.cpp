#include "attack/coordinator.h"

#include <algorithm>

#include "attack/malicious_agent.h"

namespace lw::attack {
namespace {

std::uint64_t pair_key(NodeId a, NodeId b) {
  NodeId lo = std::min(a, b);
  NodeId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

WormholeCoordinator::WormholeCoordinator(sim::Simulator& simulator,
                                         AttackParams params)
    : simulator_(simulator), params_(params) {}

void WormholeCoordinator::register_agent(MaliciousAgent* agent) {
  agents_.push_back(agent);
}

void WormholeCoordinator::set_hop_distance(NodeId a, NodeId b,
                                           std::size_t hops) {
  hop_distance_[pair_key(a, b)] = hops;
}

bool WormholeCoordinator::is_colluder(NodeId id) const {
  return std::any_of(agents_.begin(), agents_.end(),
                     [id](const MaliciousAgent* a) { return a->id() == id; });
}

Duration WormholeCoordinator::tunnel_delay(NodeId a, NodeId b) const {
  if (params_.mode != WormholeMode::kEncapsulation) return 0.0;
  auto it = hop_distance_.find(pair_key(a, b));
  const std::size_t hops = it == hop_distance_.end() ? 1 : it->second;
  return static_cast<double>(hops) * params_.encapsulation_per_hop_delay;
}

void WormholeCoordinator::tunnel_to_all(NodeId from,
                                        const pkt::Packet& packet) {
  for (MaliciousAgent* agent : agents_) {
    if (agent->id() == from) continue;
    tunnel_to(from, agent->id(), packet);
  }
}

void WormholeCoordinator::tunnel_to(NodeId from, NodeId to,
                                    const pkt::Packet& packet) {
  auto it = std::find_if(agents_.begin(), agents_.end(),
                         [to](const MaliciousAgent* a) { return a->id() == to; });
  if (it == agents_.end()) return;
  MaliciousAgent* target = *it;
  ++tunneled_;
  pkt::Packet copy = packet;
  copy.crossed_tunnel = true;
  simulator_.schedule(tunnel_delay(from, to),
                      [target, from, copy = std::move(copy)] {
                        target->on_tunnel(from, copy);
                      });
}

}  // namespace lw::attack
