// The wormhole attack taxonomy (Section 3, Table 1).
#pragma once

#include <string_view>
#include <vector>

namespace lw::attack {

enum class WormholeMode {
  kEncapsulation,   // 3.1: tunnel over an existing multihop path
  kOutOfBand,       // 3.2: dedicated high-bandwidth channel
  kHighPower,       // 3.3: one node shouting across the field
  kRelay,           // 3.4: replaying frames between non-neighbors
  kRushing,         // 3.5: protocol deviation — forward without backoff
};

const char* to_string(WormholeMode mode);

/// Row of the paper's Table 1, extended with whether LITEWORP detects the
/// mode (it handles all but protocol deviation).
struct ModeInfo {
  WormholeMode mode;
  std::string_view name;
  int min_compromised_nodes;
  std::string_view special_requirements;
  bool detected_by_liteworp;
};

/// The five rows of Table 1.
const std::vector<ModeInfo>& attack_mode_table();

/// True for modes that need a colluding pair (tunnel endpoints).
bool needs_colluders(WormholeMode mode);

}  // namespace lw::attack
