#include "attack/modes.h"

namespace lw::attack {

const char* to_string(WormholeMode mode) {
  switch (mode) {
    case WormholeMode::kEncapsulation:
      return "packet-encapsulation";
    case WormholeMode::kOutOfBand:
      return "out-of-band-channel";
    case WormholeMode::kHighPower:
      return "high-power-transmission";
    case WormholeMode::kRelay:
      return "packet-relay";
    case WormholeMode::kRushing:
      return "protocol-deviation";
  }
  return "?";
}

const std::vector<ModeInfo>& attack_mode_table() {
  static const std::vector<ModeInfo> table = {
      {WormholeMode::kEncapsulation, "Packet encapsulation", 2, "None", true},
      {WormholeMode::kOutOfBand, "Out-of-band channel", 2, "Out-of-band link",
       true},
      {WormholeMode::kHighPower, "High power transmission", 1,
       "High energy source", true},
      {WormholeMode::kRelay, "Packet relay", 1, "None", true},
      {WormholeMode::kRushing, "Protocol deviations", 1, "None", false},
  };
  return table;
}

bool needs_colluders(WormholeMode mode) {
  return mode == WormholeMode::kEncapsulation ||
         mode == WormholeMode::kOutOfBand;
}

}  // namespace lw::attack
