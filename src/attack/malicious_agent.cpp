#include "attack/malicious_agent.h"

#include <algorithm>

#include "obs/recorder.h"
#include "util/logging.h"

namespace lw::attack {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

}  // namespace

MaliciousAgent::MaliciousAgent(node::NodeEnv& env, nbr::NeighborTable& table,
                               WormholeCoordinator& coordinator,
                               AttackObserver* observer)
    : env_(env), table_(table), coordinator_(coordinator), observer_(observer) {
  coordinator_.register_agent(this);
}

bool MaliciousAgent::active() const {
  return env_.now() >= coordinator_.params().start_time;
}

void MaliciousAgent::set_relay_victims(NodeId a, NodeId b) {
  relay_victim_a_ = a;
  relay_victim_b_ = b;
}

std::size_t MaliciousAgent::my_route_index(const pkt::Packet& packet) const {
  auto it = std::find(packet.route.begin(), packet.route.end(), env_.id());
  return it == packet.route.end()
             ? kNpos
             : static_cast<std::size_t>(it - packet.route.begin());
}

NodeId MaliciousAgent::fake_prev_hop(NodeId colluder) const {
  if (!coordinator_.params().smart_prev_hop) return colluder;
  if (coordinator_.params().fixed_fake_prev &&
      fixed_prev_ != kInvalidNode) {
    return fixed_prev_;
  }
  // The "smarter" attacker names one of its genuine neighbors, so the
  // two-hop admission check passes and only the guards of that fake link
  // can expose the lie.
  util::PoolVector<NodeId> candidates = table_.active_neighbors();
  std::erase(candidates, colluder);
  if (candidates.empty()) return colluder;
  auto index = env_.rng().uniform_int(0, candidates.size() - 1);
  NodeId choice = candidates[index];
  if (coordinator_.params().fixed_fake_prev) fixed_prev_ = choice;
  return choice;
}

bool MaliciousAgent::maybe_drop_data(const pkt::Packet& packet) {
  if (packet.type != pkt::PacketType::kData) return false;
  if (packet.link_dst != env_.id()) return false;
  if (packet.final_dst == env_.id()) return false;  // our own traffic
  if (!coordinator_.params().drop_data) return false;
  ++data_dropped_;
  if (observer_) observer_->on_data_dropped(env_.id(), packet);
  if (auto* r = env_.obs(); r && r->wants(obs::Layer::kAttack)) {
    r->emit({.t = env_.now(),
             .kind = obs::EventKind::kAtkDrop,
             .node = env_.id(),
             .peer = packet.origin,
             .packet = &packet});
  }
  return true;
}

bool MaliciousAgent::intercept(const pkt::Packet& packet) {
  if (!active()) return false;
  if (packet.origin == env_.id()) return false;
  if (maybe_drop_data(packet)) return true;

  switch (coordinator_.params().mode) {
    case WormholeMode::kEncapsulation:
    case WormholeMode::kOutOfBand:
      return intercept_tunnel_modes(packet);
    case WormholeMode::kHighPower:
      return intercept_high_power(packet);
    case WormholeMode::kRelay:
      return intercept_relay(packet);
    case WormholeMode::kRushing:
      return intercept_rushing(packet);
  }
  return false;
}

bool MaliciousAgent::intercept_tunnel_modes(const pkt::Packet& packet) {
  if (packet.type == pkt::PacketType::kRouteRequest) {
    if (packet.final_dst == env_.id()) return false;  // reply honestly
    if (!tunneled_flows_.insert(packet.flow_key()).second) {
      return true;  // duplicate copy of a flow we already tunneled
    }
    pkt::Packet copy = env_.packet_factory().forward_copy(packet);
    copy.route.push_back(env_.id());
    if (auto* r = env_.obs(); r && r->wants(obs::Layer::kAttack)) {
      r->emit({.t = env_.now(),
               .kind = obs::EventKind::kAtkTunnel,
               .node = env_.id(),
               .packet = &copy});
    }
    coordinator_.tunnel_to_all(env_.id(), copy);
    return true;  // suppress the honest local rebroadcast
  }

  if (packet.type == pkt::PacketType::kRouteReply ||
      packet.type == pkt::PacketType::kData) {
    if (packet.link_dst != env_.id()) return false;
    const std::size_t idx = my_route_index(packet);
    if (idx == kNpos) return false;
    const bool toward_source = packet.type == pkt::PacketType::kRouteReply;
    if (toward_source && idx == 0) return false;  // we are the REQ origin
    if (!toward_source && idx + 1 >= packet.route.size()) return false;
    const NodeId next = toward_source ? packet.route[idx - 1]
                                      : packet.route[idx + 1];
    if (!coordinator_.is_colluder(next)) return false;  // normal forwarding
    pkt::Packet copy = env_.packet_factory().forward_copy(packet);
    copy.route_index = idx;
    if (auto* r = env_.obs(); r && r->wants(obs::Layer::kAttack)) {
      r->emit({.t = env_.now(),
               .kind = obs::EventKind::kAtkTunnel,
               .node = env_.id(),
               .peer = next,
               .packet = &copy});
    }
    coordinator_.tunnel_to(env_.id(), next, copy);
    return true;
  }
  return false;
}

void MaliciousAgent::on_tunnel(NodeId from_colluder,
                               const pkt::Packet& packet) {
  if (packet.type == pkt::PacketType::kRouteRequest) {
    if (!rebroadcast_flows_.insert(packet.flow_key()).second) return;
    tunneled_flows_.insert(packet.flow_key());  // never tunnel it back
    pkt::Packet copy = env_.packet_factory().forward_copy(packet);
    copy.route.push_back(env_.id());
    copy.announced_prev_hop = fake_prev_hop(from_colluder);
    copy.claimed_tx = kInvalidNode;  // we transmit under our own identity
    copy.link_dst = kInvalidNode;
    if (observer_) observer_->on_wormhole_replay(env_.id(), copy);
    if (auto* r = env_.obs(); r && r->wants(obs::Layer::kAttack)) {
      r->emit({.t = env_.now(),
               .kind = obs::EventKind::kAtkReplay,
               .node = env_.id(),
               .peer = from_colluder,
               .packet = &copy});
    }
    // No flood jitter: the replay must win the duplicate-suppression race.
    env_.send(std::move(copy));
    return;
  }

  if (packet.type == pkt::PacketType::kRouteReply ||
      packet.type == pkt::PacketType::kData) {
    const std::size_t idx = my_route_index(packet);
    if (idx == kNpos) return;
    const bool toward_source = packet.type == pkt::PacketType::kRouteReply;
    if (toward_source && idx == 0) return;
    if (!toward_source && idx + 1 >= packet.route.size()) return;
    const NodeId next = toward_source ? packet.route[idx - 1]
                                      : packet.route[idx + 1];
    if (coordinator_.is_colluder(next)) {  // multi-colluder chain
      pkt::Packet copy = env_.packet_factory().forward_copy(packet);
      copy.route_index = idx;
      coordinator_.tunnel_to(env_.id(), next, copy);
      return;
    }
    pkt::Packet copy = env_.packet_factory().forward_copy(packet);
    copy.route_index = idx;
    copy.link_dst = next;
    copy.announced_prev_hop = fake_prev_hop(from_colluder);
    copy.claimed_tx = kInvalidNode;
    if (observer_) observer_->on_wormhole_replay(env_.id(), copy);
    if (auto* r = env_.obs(); r && r->wants(obs::Layer::kAttack)) {
      r->emit({.t = env_.now(),
               .kind = obs::EventKind::kAtkReplay,
               .node = env_.id(),
               .peer = from_colluder,
               .packet = &copy});
    }
    env_.send(std::move(copy));
  }
}

bool MaliciousAgent::intercept_high_power(const pkt::Packet& packet) {
  const double mult = coordinator_.params().high_power_multiplier;
  if (packet.type == pkt::PacketType::kRouteRequest) {
    if (packet.final_dst == env_.id()) return false;
    if (!rushed_flows_.insert(packet.flow_key()).second) return true;
    pkt::Packet copy = env_.packet_factory().forward_copy(packet);
    copy.route.push_back(env_.id());
    // The announcement is truthful; the attack is purely the reach.
    copy.announced_prev_hop = packet.claimed_tx;
    copy.claimed_tx = kInvalidNode;
    if (observer_) observer_->on_wormhole_replay(env_.id(), copy);
    env_.send(std::move(copy), {.range_multiplier = mult});
    return true;
  }
  if ((packet.type == pkt::PacketType::kRouteReply ||
       packet.type == pkt::PacketType::kData) &&
      packet.link_dst == env_.id()) {
    const std::size_t idx = my_route_index(packet);
    if (idx == kNpos) return false;
    const bool toward_source = packet.type == pkt::PacketType::kRouteReply;
    if (toward_source && idx == 0) return false;
    if (!toward_source && idx + 1 >= packet.route.size()) return false;
    pkt::Packet copy = env_.packet_factory().forward_copy(packet);
    copy.route_index = idx;
    copy.link_dst = toward_source ? packet.route[idx - 1]
                                  : packet.route[idx + 1];
    copy.announced_prev_hop = packet.claimed_tx;
    copy.claimed_tx = kInvalidNode;
    env_.send(std::move(copy), {.range_multiplier = mult});
    return true;
  }
  return false;
}

bool MaliciousAgent::intercept_relay(const pkt::Packet& packet) {
  const NodeId sender = packet.claimed_tx;
  if (sender != relay_victim_a_ && sender != relay_victim_b_) return false;
  if (!relayed_flows_.insert(packet.flow_key()).second) return false;
  // Bit-exact replay: same claimed identity, same announcements. The
  // victims are out of each other's range, so only the replay carries the
  // frame across.
  pkt::Packet replay = env_.packet_factory().forward_copy(packet);
  if (observer_) observer_->on_wormhole_replay(env_.id(), replay);
  env_.send(std::move(replay));
  return false;  // keep behaving as an honest insider otherwise
}

bool MaliciousAgent::intercept_rushing(const pkt::Packet& packet) {
  if (packet.type != pkt::PacketType::kRouteRequest) return false;
  if (packet.final_dst == env_.id()) return false;
  if (packet.origin == env_.id()) return false;
  if (!rushed_flows_.insert(packet.flow_key()).second) return true;
  // Protocol-compliant content, deviant timing: no jitter, no carrier
  // sense, no backoff. LITEWORP has nothing to detect here (Section 4.2.3).
  pkt::Packet copy = env_.packet_factory().forward_copy(packet);
  copy.route.push_back(env_.id());
  copy.announced_prev_hop = packet.claimed_tx;
  copy.claimed_tx = kInvalidNode;
  env_.send(std::move(copy), {.skip_backoff = true});
  return true;
}

}  // namespace lw::attack
