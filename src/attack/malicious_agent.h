// Byzantine node behavior for every wormhole mode.
//
// A MaliciousAgent sits in front of its host node's honest protocol stack:
// the node offers it every decoded frame first, and the agent either
// consumes it (wormhole manipulation) or lets the honest stack process it.
// Before AttackParams::start_time the agent is dormant and the node is
// indistinguishable from an honest insider.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "attack/coordinator.h"
#include "util/arena.h"
#include "neighbor/neighbor_table.h"
#include "node/node_env.h"

namespace lw::attack {

/// Ground-truth attack events for the metrics layer.
class AttackObserver {
 public:
  virtual ~AttackObserver() = default;
  virtual void on_data_dropped(NodeId /*malicious*/, const pkt::Packet&) {}
  virtual void on_wormhole_replay(NodeId /*malicious*/, const pkt::Packet&) {}
};

class MaliciousAgent {
 public:
  MaliciousAgent(node::NodeEnv& env, nbr::NeighborTable& table,
                 WormholeCoordinator& coordinator, AttackObserver* observer);

  /// Offered every frame the node decodes, before honest processing.
  /// Returns true when the frame was consumed by the attack.
  bool intercept(const pkt::Packet& packet);

  /// Delivery from the tunnel (out-of-band or encapsulated).
  void on_tunnel(NodeId from_colluder, const pkt::Packet& packet);

  /// Relay mode: the pair of non-neighbor victims whose frames this node
  /// replays at each other.
  void set_relay_victims(NodeId a, NodeId b);

  bool active() const;
  NodeId id() const { return env_.id(); }
  std::uint64_t data_dropped() const { return data_dropped_; }

 private:
  bool intercept_tunnel_modes(const pkt::Packet& packet);
  bool intercept_high_power(const pkt::Packet& packet);
  bool intercept_relay(const pkt::Packet& packet);
  bool intercept_rushing(const pkt::Packet& packet);

  /// True and counts the drop when the frame is data addressed to us that
  /// the active attacker swallows.
  bool maybe_drop_data(const pkt::Packet& packet);

  /// The lie a wormhole endpoint tells in announced_prev_hop when
  /// rebroadcasting tunneled control traffic.
  NodeId fake_prev_hop(NodeId colluder) const;

  /// Position of this node in a source route, or npos.
  std::size_t my_route_index(const pkt::Packet& packet) const;

  node::NodeEnv& env_;
  nbr::NeighborTable& table_;
  WormholeCoordinator& coordinator_;
  AttackObserver* observer_;

  util::PoolUnorderedSet<FlowKey> tunneled_flows_;
  util::PoolUnorderedSet<FlowKey> rebroadcast_flows_;
  util::PoolUnorderedSet<FlowKey> relayed_flows_;
  util::PoolUnorderedSet<FlowKey> rushed_flows_;
  NodeId relay_victim_a_ = kInvalidNode;
  NodeId relay_victim_b_ = kInvalidNode;
  /// Sticky lie for AttackParams::fixed_fake_prev.
  mutable NodeId fixed_prev_ = kInvalidNode;
  std::uint64_t data_dropped_ = 0;
};

}  // namespace lw::attack
