// A full-scale sensor field (the paper's 100-node Table 2 deployment) with
// detailed introspection: channel airtime by frame type, admission
// statistics, watch-buffer occupancy, and per-malicious-node isolation
// timelines. The diagnostic companion to `quickstart`.
//
//   ./sensor_field [--nodes=100] [--seed=1] [--duration=2000]
//                  [--malicious=2] [--liteworp=true]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "packet/packet.h"
#include "phy/trace.h"
#include "scenario/network.h"
#include "util/config.h"

namespace {
/// Warns about mistyped flags (set but never read).
void warn_unread_flags(const lw::Config& args) {
  for (const auto& key : args.unread_keys()) {
    std::fprintf(stderr, "warning: unknown flag --%s (ignored)\n",
                 key.c_str());
  }
}
}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const std::string trace_path = args.get_string("trace", "");

  lw::scenario::ExperimentConfig config =
      lw::scenario::ExperimentConfig::table2_defaults();
  config.node_count = static_cast<std::size_t>(args.get_int("nodes", 100));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.duration = args.get_double("duration", 2000.0);
  config.malicious_count =
      static_cast<std::size_t>(args.get_int("malicious", 2));
  config.defense.name = args.get_bool("liteworp", true) ? "liteworp" : "none";
  config.finalize();
  warn_unread_flags(args);

  lw::scenario::Network net(config);
  std::ofstream trace_file;
  std::unique_ptr<lw::phy::TextTrace> trace;
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    trace = std::make_unique<lw::phy::TextTrace>(trace_file);
    net.recorder().add_sink(trace.get(),
                            lw::obs::layer_bit(lw::obs::Layer::kPhy));
    std::cout << "tracing every PHY event to " << trace_path << '\n';
  }
  std::cout << "topology: " << net.size() << " nodes, average degree "
            << net.average_degree() << ", malicious:";
  for (lw::NodeId m : net.malicious_ids()) std::cout << ' ' << m;
  std::cout << '\n';

  net.run();

  const auto& m = net.metrics();
  const auto& phy = net.medium().stats();

  std::cout << "\n--- channel airtime by frame type ---\n";
  for (std::size_t i = 0; i < phy.tx_by_type.size(); ++i) {
    if (phy.tx_by_type[i] == 0) continue;
    std::printf("  %-14s %8llu frames  %8.1f s airtime (%.1f%% of wall)  "
                "%llu rx-collisions\n",
                lw::pkt::to_string(static_cast<lw::pkt::PacketType>(i)),
                static_cast<unsigned long long>(phy.tx_by_type[i]),
                phy.airtime_by_type[i],
                100.0 * phy.airtime_by_type[i] / config.duration,
                static_cast<unsigned long long>(phy.collisions_by_type[i]));
  }
  std::printf("  collisions: %llu / %llu receptions (%.1f%%)\n",
              static_cast<unsigned long long>(phy.frames_collided),
              static_cast<unsigned long long>(phy.frames_collided +
                                              phy.frames_delivered),
              100.0 * static_cast<double>(phy.frames_collided) /
                  static_cast<double>(phy.frames_collided +
                                      phy.frames_delivered));

  {
    lw::mac::MacStats mac;
    for (lw::NodeId id = 0; id < net.size(); ++id) {
      const auto& s = net.node(id).mac_stats();
      mac.enqueued += s.enqueued;
      mac.transmitted += s.transmitted;
      mac.dropped_channel_busy += s.dropped_channel_busy;
      mac.retransmissions += s.retransmissions;
      mac.dropped_no_ack += s.dropped_no_ack;
      mac.acks_sent += s.acks_sent;
      mac.duplicates_suppressed += s.duplicates_suppressed;
    }
    std::printf("\n--- MAC (network-wide) ---\n"
                "  enqueued %llu  transmitted %llu  retransmissions %llu\n"
                "  dropped: channel-busy %llu, no-ack %llu;  dup-suppressed "
                "%llu\n",
                static_cast<unsigned long long>(mac.enqueued),
                static_cast<unsigned long long>(mac.transmitted),
                static_cast<unsigned long long>(mac.retransmissions),
                static_cast<unsigned long long>(mac.dropped_channel_busy),
                static_cast<unsigned long long>(mac.dropped_no_ack),
                static_cast<unsigned long long>(mac.duplicates_suppressed));
  }

  std::cout << "\n--- traffic ---\n";
  std::printf("  originated %llu  delivered %llu (%.1f%%)  wormhole-dropped "
              "%llu  no-route %llu\n",
              static_cast<unsigned long long>(m.data_originated),
              static_cast<unsigned long long>(m.data_delivered),
              100.0 * static_cast<double>(m.data_delivered) /
                  static_cast<double>(m.data_originated),
              static_cast<unsigned long long>(m.data_dropped_malicious),
              static_cast<unsigned long long>(m.data_dropped_no_route));
  std::printf("  discoveries %llu  routes %llu  wormhole routes %llu\n",
              static_cast<unsigned long long>(m.discoveries),
              static_cast<unsigned long long>(m.routes_established),
              static_cast<unsigned long long>(m.wormhole_routes));
  std::printf("  delivery latency: mean %.3f s, p95 %.3f s\n",
              m.mean_delivery_latency(), m.latency_percentile(95.0));

  std::cout << "\n--- admission rejections (network-wide) ---\n";
  lw::nbr::AdmissionStats totals;
  for (lw::NodeId id = 0; id < net.size(); ++id) {
    const auto& s = net.node(id).admission_stats();
    totals.accepted += s.accepted;
    totals.unknown_sender += s.unknown_sender;
    totals.revoked_sender += s.revoked_sender;
    totals.bogus_prev_hop += s.bogus_prev_hop;
    totals.revoked_prev_hop += s.revoked_prev_hop;
  }
  std::printf("  accepted %llu  unknown-sender %llu  revoked-sender %llu  "
              "bogus-prev %llu  revoked-prev %llu\n",
              static_cast<unsigned long long>(totals.accepted),
              static_cast<unsigned long long>(totals.unknown_sender),
              static_cast<unsigned long long>(totals.revoked_sender),
              static_cast<unsigned long long>(totals.bogus_prev_hop),
              static_cast<unsigned long long>(totals.revoked_prev_hop));

  std::cout << "\n--- defense ---\n";
  std::printf("  suspicions: fabrication %llu, drop %llu (false %llu)\n",
              static_cast<unsigned long long>(m.suspicions_fabrication),
              static_cast<unsigned long long>(m.suspicions_drop),
              static_cast<unsigned long long>(m.false_suspicions));
  std::printf("  local detections %llu  alerts %llu  false isolations %llu\n",
              static_cast<unsigned long long>(m.local_detections),
              static_cast<unsigned long long>(m.alerts_sent),
              static_cast<unsigned long long>(m.false_isolations));
  for (const auto& [mal, record] : m.isolation()) {
    std::printf("  malicious %u: first detection %s, isolation %s "
                "(%zu/%zu neighbors revoked it)\n",
                mal,
                record.first_detection
                    ? std::to_string(*record.first_detection).c_str()
                    : "never",
                record.complete ? std::to_string(*record.complete).c_str()
                                : "incomplete",
                record.revoked_by.size(), record.required.size());
  }

  std::cout << "\n--- per-node state (sampled) ---\n";
  for (lw::NodeId id = 0; id < net.size(); id += net.size() / 4 + 1) {
    const auto& node = net.node(id);
    std::printf("  node %3u: neighbors %zu (revoked %zu)",
                id, node.table().neighbor_count(),
                node.table().revoked_count());
    if (node.monitor() != nullptr) {
      std::printf("  watch peak %zu entries, state %zu bytes",
                  node.monitor()->watch_buffer().peak_entries(),
                  node.monitor()->storage_bytes());
    }
    std::printf("  table %zu bytes\n", node.table().storage_bytes());
  }
  return 0;
}
