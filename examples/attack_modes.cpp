// Walks through the paper's five wormhole attack modes (Section 3) on the
// same field, narrating what each attacker does and how LITEWORP responds.
//
//   ./attack_modes [--nodes=60] [--seed=21] [--duration=400]
#include <cstdio>
#include <string>

#include "attack/modes.h"
#include "scenario/network.h"
#include "util/config.h"

namespace {
/// Warns about mistyped flags (set but never read).
void warn_unread_flags(const lw::Config& args) {
  for (const auto& key : args.unread_keys()) {
    std::fprintf(stderr, "warning: unknown flag --%s (ignored)\n",
                 key.c_str());
  }
}
}  // namespace

namespace {

void narrate(const lw::attack::ModeInfo& info,
             const lw::scenario::ExperimentConfig& base) {
  std::printf("\n==================================================\n");
  std::printf("Mode: %s  (min %d compromised, requires: %s)\n",
              std::string(info.name).c_str(), info.min_compromised_nodes,
              std::string(info.special_requirements).c_str());
  std::printf("==================================================\n");

  for (bool liteworp : {false, true}) {
    auto config = base;
    config.attack.mode = info.mode;
    config.malicious_count =
        static_cast<std::size_t>(info.min_compromised_nodes);
    config.defense.name = liteworp ? "liteworp" : "none";
    if (info.mode == lw::attack::WormholeMode::kRushing) config.seed = 28;
    config.finalize();

    lw::scenario::Network net(config);
    std::printf("\n[%s] attackers:", liteworp ? "LITEWORP" : "baseline");
    for (lw::NodeId m : net.malicious_ids()) std::printf(" %u", m);
    std::printf("\n");
    net.run();

    const auto& m = net.metrics();
    std::printf("  routes: %llu total, %llu with forged links, %llu via "
                "attacker transit\n",
                static_cast<unsigned long long>(m.routes_established),
                static_cast<unsigned long long>(m.wormhole_routes),
                static_cast<unsigned long long>(
                    m.routes_via_malicious_transit));
    std::printf("  data:   %llu sent, %llu delivered, %llu swallowed by "
                "attackers\n",
                static_cast<unsigned long long>(m.data_originated),
                static_cast<unsigned long long>(m.data_delivered),
                static_cast<unsigned long long>(m.data_dropped_malicious));
    if (liteworp) {
      std::printf("  guards: %llu fabrication + %llu drop suspicions, "
                  "%llu alerts\n",
                  static_cast<unsigned long long>(m.suspicions_fabrication),
                  static_cast<unsigned long long>(m.suspicions_drop),
                  static_cast<unsigned long long>(m.alerts_sent));
      for (const auto& [mal, record] : m.isolation()) {
        if (record.complete) {
          std::printf("  attacker %u completely isolated at t = %.1f s\n",
                      mal, *record.complete);
        } else if (record.first_detection) {
          std::printf("  attacker %u detected (t = %.1f s) but not fully "
                      "isolated\n",
                      mal, *record.first_detection);
        } else {
          std::printf("  attacker %u never detected%s\n", mal,
                      info.detected_by_liteworp
                          ? ""
                          : " (expected: the paper's stated limitation)");
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  auto base = lw::scenario::ExperimentConfig::table2_defaults();
  base.node_count = static_cast<std::size_t>(args.get_int("nodes", 60));
  base.seed = static_cast<std::uint64_t>(args.get_int("seed", 21));
  base.duration = args.get_double("duration", 400.0);
  base.finalize();
  warn_unread_flags(args);

  std::puts("LITEWORP attack-mode tour: each of the paper's five wormhole");
  std::puts("modes, first against an unprotected network, then against");
  std::puts("LITEWORP. Attack starts at t = 50 s.");

  for (const auto& info : lw::attack::attack_mode_table()) {
    narrate(info, base);
  }

  std::puts("\nSummary (matches Table 1): tunnels are detected and isolated;");
  std::puts("high-power and relay wormholes are prevented outright by the");
  std::puts("neighbor checks; protocol deviation evades local monitoring.");
  return 0;
}
