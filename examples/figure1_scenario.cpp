// The paper's Figure 1 / Figure 2 scenario, reproduced literally.
//
// A wants a route to B. The honest path is the chain A-C-D-E-B (four
// hops). Malicious X sits next to A and colluding Y next to B; X tunnels
// A's route request to Y, which replays it locally, so B sees an
// apparently three-hop route A-X-Y-B and prefers it — even though X and Y
// are far apart. With LITEWORP, the guards around Y catch the replay.
//
//   ./figure1_scenario [--mode=encap|oob] [--liteworp=true]
#include <cstdio>
#include <string>

#include "scenario/network.h"
#include "util/config.h"

namespace {
/// Warns about mistyped flags (set but never read).
void warn_unread_flags(const lw::Config& args) {
  for (const auto& key : args.unread_keys()) {
    std::fprintf(stderr, "warning: unknown flag --%s (ignored)\n",
                 key.c_str());
  }
}
}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bool liteworp = args.get_bool("liteworp", true);
  const std::string mode_name = args.get_string("mode", "oob");

  auto config = lw::scenario::ExperimentConfig::table2_defaults();
  // Hand-built geometry (range 30 m). The honest chain runs along y = 0;
  // X and Y hover near its two ends. The relay chain U-V-W-Z of Figure 1
  // exists implicitly in encapsulation mode through the tunnel delay.
  //
  //   ids: 0=A  1=C  2=D  3=E  4=B  5=X  6=Y  7..9 = side nodes (guards)
  config.positions = std::vector<lw::topo::Position>{
      {0, 0},     // A
      {25, 0},    // C
      {50, 0},    // D
      {75, 0},    // E
      {100, 0},   // B
      {10, 20},   // X  (hears A)
      {90, 20},   // Y  (hears B)
      {20, 35},   // guard of A/X neighborhood... also near X
      {80, 35},   // guard near Y and B
      {95, 40},   // second guard near Y
  };
  config.node_count = 10;
  config.malicious_nodes = {5, 6};  // X and Y
  config.malicious_count = 2;
  config.attack.mode = mode_name == "encap"
                           ? lw::attack::WormholeMode::kEncapsulation
                           : lw::attack::WormholeMode::kOutOfBand;
  config.attack.start_time = 30.0;
  // Light background chatter: a single flow yields a single fabricated
  // REQ — one data point — while guards need a pattern (6 of 7 watched
  // packets) before accusing. Recurring discoveries supply it, exactly as
  // the paper's full workload does.
  config.traffic.data_rate = 1.0 / 15.0;
  config.traffic.destination_change_rate = 1.0 / 60.0;
  config.defense.name = liteworp ? "liteworp" : "none";
  config.defense.liteworp.detection_confidence = 2;  // tiny field, few guards
  config.duration = 300.0;
  config.finalize();
  warn_unread_flags(args);

  lw::scenario::Network net(config);
  std::printf("Figure 1 field: A=0 ... B=4 honest chain; X=5, Y=6 %s "
              "colluders; LITEWORP %s\n\n",
              lw::attack::to_string(config.attack.mode),
              liteworp ? "ON" : "OFF");

  // Let discovery settle, start the attack, then ask A for a route to B.
  net.run_until(config.attack.start_time + 5.0);
  net.node(0).routing().send_data(4, 32);
  net.run_until(net.simulator().now() + 30.0);

  const auto* route = net.node(0).routing().cache().peek(4,
                                                         net.simulator().now());
  if (route != nullptr) {
    std::printf("route A -> B established:");
    for (lw::NodeId hop : route->path) std::printf(" %u", hop);
    std::printf("  (%zu hops)\n", route->hop_count());
    bool through_wormhole = false;
    for (std::size_t i = 0; i + 1 < route->path.size(); ++i) {
      if (!net.graph().is_neighbor(route->path[i], route->path[i + 1])) {
        through_wormhole = true;
      }
    }
    std::printf("  -> %s\n",
                through_wormhole
                    ? "the apparently-short A-X-Y-B illusion (X-Y is NOT a "
                      "physical link)"
                    : "the honest chain");
  } else {
    std::puts("no route cached (wormhole packets were rejected; discovery "
              "continues)");
  }

  // Keep driving traffic so guards accumulate evidence.
  for (int i = 1; i <= 20; ++i) {
    net.simulator().schedule(i * 10.0, [&net] {
      net.node(0).routing().send_data(4, 32);
    });
  }
  net.run();

  const auto& m = net.metrics();
  std::printf("\nafter %.0f s: %llu delivered, %llu swallowed by the "
              "wormhole\n",
              config.duration,
              static_cast<unsigned long long>(m.data_delivered),
              static_cast<unsigned long long>(m.data_dropped_malicious));
  if (const auto* final_route =
          net.node(0).routing().cache().peek(4, net.simulator().now())) {
    std::printf("final cached route A -> B:");
    for (lw::NodeId hop : final_route->path) std::printf(" %u", hop);
    bool clean = true;
    for (std::size_t i = 0; i + 1 < final_route->path.size(); ++i) {
      if (!net.graph().is_neighbor(final_route->path[i],
                                   final_route->path[i + 1])) {
        clean = false;
      }
    }
    std::printf("  (%s)\n", clean ? "the honest chain"
                                  : "still the wormhole illusion");
  }
  for (const auto& [mal, record] : m.isolation()) {
    const char* name = mal == 5 ? "X" : "Y";
    if (record.complete) {
      std::printf("%s (node %u) completely isolated at t = %.1f s\n", name,
                  mal, *record.complete);
    } else if (record.first_detection) {
      std::printf("%s (node %u) detected at t = %.1f s (%zu/%zu neighbors "
                  "revoked)\n",
                  name, mal, *record.first_detection,
                  record.revoked_by.size(), record.required.size());
    } else {
      std::printf("%s (node %u) undetected%s\n", name, mal,
                  liteworp ? "" : " (no defense)");
    }
  }
  return 0;
}
