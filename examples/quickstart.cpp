// Quickstart: a 50-node sensor field, two colluders opening an out-of-band
// wormhole at t = 50 s, and LITEWORP detecting and isolating them.
//
//   ./quickstart [--nodes=50] [--seed=3] [--duration=600]
//                [--defense=liteworp|leash|zscore|none]
//                [--mode=oob|encap|highpower|relay|rushing] [--malicious=2]
#include <cstdio>
#include <iostream>
#include <string>

#include "scenario/runner.h"
#include "util/config.h"
#include "util/logging.h"

namespace {
/// Warns about mistyped flags (set but never read).
void warn_unread_flags(const lw::Config& args) {
  for (const auto& key : args.unread_keys()) {
    std::fprintf(stderr, "warning: unknown flag --%s (ignored)\n",
                 key.c_str());
  }
}
}  // namespace

namespace {

lw::attack::WormholeMode parse_mode(const std::string& name) {
  using lw::attack::WormholeMode;
  if (name == "oob") return WormholeMode::kOutOfBand;
  if (name == "encap") return WormholeMode::kEncapsulation;
  if (name == "highpower") return WormholeMode::kHighPower;
  if (name == "relay") return WormholeMode::kRelay;
  if (name == "rushing") return WormholeMode::kRushing;
  throw std::invalid_argument("unknown attack mode: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);

  lw::scenario::ExperimentConfig config =
      lw::scenario::ExperimentConfig::table2_defaults();
  config.node_count =
      static_cast<std::size_t>(args.get_int("nodes", 50));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  config.duration = args.get_double("duration", 600.0);
  config.defense.name = args.get_string("defense", "liteworp");
  config.malicious_count =
      static_cast<std::size_t>(args.get_int("malicious", 2));
  config.attack.mode = parse_mode(args.get_string("mode", "oob"));
  config.finalize();
  warn_unread_flags(args);

  std::cout << "=== LITEWORP quickstart ===\n" << config.summary() << '\n';

  lw::scenario::RunResult result = lw::scenario::run_experiment(config);

  std::cout << "--- traffic ---\n"
            << "data packets originated : " << result.data_originated << '\n'
            << "data packets delivered  : " << result.data_delivered << '\n'
            << "dropped by wormhole     : " << result.data_dropped_malicious
            << "  (" << 100.0 * result.fraction_dropped() << "% of traffic)\n"
            << "dropped (no route)      : " << result.data_dropped_no_route
            << '\n'
            << "route discoveries       : " << result.discoveries << '\n'
            << "routes established      : " << result.routes_established
            << '\n'
            << "wormhole routes         : " << result.wormhole_routes << "  ("
            << 100.0 * result.fraction_wormhole_routes() << "%)\n"
            << "delivery latency        : " << result.mean_delivery_latency
            << " s mean, " << result.p95_delivery_latency << " s p95\n";

  std::cout << "--- defense ---\n"
            << "fabrication suspicions  : " << result.suspicions_fabrication
            << '\n'
            << "drop suspicions         : " << result.suspicions_drop << '\n'
            << "local detections        : " << result.local_detections << '\n'
            << "alerts sent             : " << result.alerts_sent << '\n'
            << "malicious isolated      : " << result.malicious_isolated
            << " / " << result.malicious_count << '\n'
            << "false isolations        : " << result.false_isolations << '\n';
  if (result.isolation_latency) {
    std::printf("isolation latency       : %.2f s after attack start\n",
                *result.isolation_latency);
  } else if (result.malicious_count > 0) {
    std::cout << "isolation latency       : (not completely isolated)\n";
  }

  std::cout << "--- channel ---\n"
            << "frames transmitted      : " << result.frames_transmitted
            << '\n'
            << "frames delivered        : " << result.frames_delivered << '\n'
            << "frames lost to collision: " << result.frames_collided << '\n';
  return 0;
}

