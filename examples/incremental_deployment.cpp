// Incremental deployment: a live LITEWORP network absorbs late-deployed
// nodes through the dynamic challenge-response join (Sections 4.1 / 7),
// then survives a wormhole opened after the network has grown.
//
//   ./incremental_deployment [--nodes=40] [--joiners=3] [--join_time=80]
//                            [--seed=51] [--duration=500]
#include <cstdio>

#include "scenario/network.h"
#include "util/config.h"

namespace {
/// Warns about mistyped flags (set but never read).
void warn_unread_flags(const lw::Config& args) {
  for (const auto& key : args.unread_keys()) {
    std::fprintf(stderr, "warning: unknown flag --%s (ignored)\n",
                 key.c_str());
  }
}
}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  auto config = lw::scenario::ExperimentConfig::table2_defaults();
  config.node_count = static_cast<std::size_t>(args.get_int("nodes", 40));
  config.late_joiners = static_cast<std::size_t>(args.get_int("joiners", 3));
  config.late_join_time = args.get_double("join_time", 80.0);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 51));
  config.duration = args.get_double("duration", 500.0);
  config.malicious_count = 2;
  config.attack.start_time =
      config.late_join_time +
      static_cast<double>(config.late_joiners) * config.late_join_stagger +
      40.0;
  config.finalize();
  warn_unread_flags(args);

  lw::scenario::Network net(config);
  std::printf("initial deployment: %zu nodes; %zu joiners at t = %.0f s "
              "(staggered %.0f s); wormhole at t = %.0f s\n\n",
              config.node_count, config.late_joiners, config.late_join_time,
              config.late_join_stagger, config.attack.start_time);

  // Phase 1: the initial network settles.
  net.run_until(config.late_join_time - 1.0);
  std::printf("[t=%6.1f] initial network: %llu routes, %llu data delivered\n",
              net.simulator().now(),
              static_cast<unsigned long long>(
                  net.metrics().routes_established),
              static_cast<unsigned long long>(net.metrics().data_delivered));

  // Phase 2: the joiners arrive.
  const double settled = config.late_join_time +
                         static_cast<double>(config.late_joiners) *
                             config.late_join_stagger +
                         30.0;
  net.run_until(settled);
  for (std::size_t j = 0; j < config.late_joiners; ++j) {
    const lw::NodeId joiner =
        static_cast<lw::NodeId>(config.node_count + j);
    const auto& table = net.node(joiner).table();
    std::printf("[t=%6.1f] joiner %u: %zu/%zu neighbors discovered, "
                "%zu second-hop lists\n",
                net.simulator().now(), joiner, table.neighbor_count(),
                net.graph().neighbors(joiner).size(),
                table.neighbor_count());
  }

  // Phase 3: the wormhole opens against the grown network.
  net.run();
  const auto& m = net.metrics();
  std::printf("\n[t=%6.1f] final: %llu data delivered, %llu eaten by the "
              "wormhole, %zu/%zu attackers isolated, %llu false isolations\n",
              net.simulator().now(),
              static_cast<unsigned long long>(m.data_delivered),
              static_cast<unsigned long long>(m.data_dropped_malicious),
              m.malicious_isolated_count(), net.malicious_ids().size(),
              static_cast<unsigned long long>(m.false_isolations));
  for (const auto& [mal, record] : m.isolation()) {
    if (record.complete) {
      std::printf("  attacker %u isolated at t = %.1f s "
                  "(%zu neighbors revoked it)\n",
                  mal, *record.complete, record.revoked_by.size());
    }
  }
  std::puts("\nThe joiners participate as full citizens: they route, they"
            "\nguard their neighbors' links, and they receive alerts.");
  return 0;
}
