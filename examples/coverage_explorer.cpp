// Interactive exploration of the Section 5.1 coverage model: answers the
// design question "how dense must my network be, and how should I set the
// detection confidence index?" for user-supplied parameters.
//
//   ./coverage_explorer [--kappa=7] [--k=5] [--gamma=3] [--pc=0.05]
//                       [--pc_nb=3] [--target=0.95] [--nb=8]
#include <cstdio>

#include "analysis/cost_model.h"
#include "analysis/coverage.h"
#include "util/config.h"

namespace {
/// Warns about mistyped flags (set but never read).
void warn_unread_flags(const lw::Config& args) {
  for (const auto& key : args.unread_keys()) {
    std::fprintf(stderr, "warning: unknown flag --%s (ignored)\n",
                 key.c_str());
  }
}
}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  lw::analysis::CoverageParams params;
  params.window_events = args.get_int("kappa", 7);
  params.per_guard_threshold = args.get_int("k", 5);
  params.detection_confidence = args.get_int("gamma", 3);
  params.pc_reference = args.get_double("pc", 0.05);
  params.pc_reference_neighbors = args.get_double("pc_nb", 3.0);
  const double target = args.get_double("target", 0.95);
  const double nb = args.get_double("nb", 8.0);
  warn_unread_flags(args);

  std::puts("== LITEWORP coverage explorer ==\n");
  std::printf("window kappa = %d packets, per-guard threshold k = %d, "
              "gamma = %d\n",
              params.window_events, params.per_guard_threshold,
              params.detection_confidence);
  std::printf("P_C = %.3f at N_B = %.1f, growing linearly with density\n\n",
              params.pc_reference, params.pc_reference_neighbors);

  std::printf("At your density N_B = %.1f:\n", nb);
  const double pc = lw::analysis::collision_probability(params, nb);
  std::printf("  collision probability        P_C     = %.3f\n", pc);
  std::printf("  expected guards per link     g       = %.2f\n",
              lw::analysis::expected_guards(nb));
  std::printf("  per-guard alert probability  P_alert = %.4f\n",
              lw::analysis::guard_alert_probability(params, pc));
  std::printf("  P(wormhole detected)                 = %.4f\n",
              lw::analysis::detection_probability(params, nb));
  std::printf("  P(honest node falsely accused)       = %.3e\n\n",
              lw::analysis::false_alarm_probability(params, nb));

  std::printf("Density needed for P(detect) >= %.2f: ", target);
  const double needed =
      lw::analysis::neighbors_for_detection(params, target, 3.0, 60.0);
  if (needed > 0) {
    std::printf("N_B >= %.1f", needed);
    const double d = lw::analysis::density_from_neighbors(30.0, needed);
    std::printf("  (%.5f nodes/m^2 at r = 30 m)\n", d);
  } else {
    std::puts("unattainable below N_B = 60 with these parameters");
  }

  std::puts("\nGamma trade-off at your density:");
  std::printf("  %-7s %-14s %s\n", "gamma", "P(detect)", "P(false alarm)");
  lw::analysis::CoverageParams sweep = params;
  for (int gamma = 1; gamma <= 10; ++gamma) {
    sweep.detection_confidence = gamma;
    std::printf("  %-7d %-14.4f %.3e\n", gamma,
                lw::analysis::detection_probability(sweep, nb),
                lw::analysis::false_alarm_probability(sweep, nb));
  }

  std::puts("\nMemory budget at this density (Section 5.2):");
  lw::analysis::CostParams cost;
  cost.average_neighbors = nb;
  cost.route_establishment_rate = 0.5;
  std::printf("  neighbor lists %zu B + watch buffer %zu B + alert buffer "
              "%zu B = %zu B per node\n",
              lw::analysis::neighbor_list_bytes(nb),
              lw::analysis::watch_buffer_bytes(4.0),
              lw::analysis::alert_buffer_bytes(params.detection_confidence),
              lw::analysis::total_state_bytes(cost, 2.5,
                                              params.detection_confidence));
  return 0;
}
