// Robustness sweep: LiteWorp detection under infrastructure faults.
//
// Grid: crash rate x framing guards x link loss, each point a full
// wormhole run (M = 2) with a deterministic FaultPlan layered on top:
//
//   crash rate     fraction of nodes scheduled to crash mid-run and
//                  reboot 70 s later through dynamic join (churn);
//   framing guards compromised guards emitting authenticated false
//                  alerts against one victim -- the paper's gamma
//                  (detection confidence) bar is the defense, so the
//                  axis brackets gamma: below it framed isolations must
//                  stay at zero, at/above it the victim can fall;
//   link loss      extra loss on every link inside a 12-node id window
//                  during [80, 200) s (transient partition pressure).
//
// Reported per point: detection probability (the wormhole still gets
// caught under churn), framed accusations/isolations (gamma claim),
// crash/recovery counts and mean recovery latency (dynamic-join
// re-entry), and the dropped-data fraction.
//
//   ./bench_fault_resilience [--runs=2] [--seed=900] [--threads=1]
//                            [--nodes=49] [--duration=300] [--json]
//
// Standard flags (bench_common.h) apply; --run-timeout and SIGINT
// handling come free with the harness.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/sweep.h"
#include "util/config.h"

namespace {

/// Builds the per-point fault plan. Fault targets are fixed id ranges
/// (not topology-aware): crash victims stride through [2, nodes), the
/// framing victim sits mid-range, and the lossy window covers every pair
/// in [2, 14) -- with random placement an expected handful of those
/// pairs are real links. Malicious ids are randomly picked per seed, so
/// a target occasionally lands on an attacker; that only makes the
/// point harder (crashing a wormhole endpoint disrupts the attack).
lw::fault::FaultPlan make_plan(std::size_t nodes, double crash_rate,
                               std::size_t frame_guards, double link_loss) {
  lw::fault::FaultPlan plan;
  const auto n_crash =
      static_cast<std::size_t>(crash_rate * static_cast<double>(nodes) + 0.5);
  if (n_crash > 0) {
    const std::size_t pool = nodes - 2;
    const std::size_t stride = std::max<std::size_t>(1, pool / n_crash);
    for (std::size_t i = 0; i < n_crash && 2 + i * stride < nodes; ++i) {
      lw::fault::CrashFault crash;
      crash.node = static_cast<lw::NodeId>(2 + i * stride);
      crash.at = 60.0 + 15.0 * static_cast<double>(i);
      crash.recover_at = crash.at + 70.0;
      plan.crashes.push_back(crash);
    }
  }
  if (frame_guards > 0) {
    lw::fault::FramingFault framing;
    framing.victim = static_cast<lw::NodeId>(nodes / 2);
    framing.guards = frame_guards;
    framing.start = 120.0;
    plan.framings.push_back(framing);
  }
  if (link_loss > 0.0) {
    for (lw::NodeId a = 2; a < 14 && a < nodes; ++a) {
      for (lw::NodeId b = a + 1; b < 14 && b < nodes; ++b) {
        lw::fault::LinkFault link;
        link.a = a;
        link.b = b;
        link.from = 80.0;
        link.until = 200.0;
        link.extra_loss = link_loss;
        plan.links.push_back(link);
      }
    }
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 2, 900);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 49));
  const double duration = args.get_double("duration", 300.0);
  if (int status = bench::finish(args)) return status;

  lw::scenario::SweepSpec spec;
  spec.base = lw::scenario::ExperimentConfig::table2_defaults();
  spec.base.node_count = nodes;
  spec.base.duration = duration;
  spec.base.malicious_count = 2;
  const int gamma = spec.base.defense.liteworp.detection_confidence;

  const double crash_rates[] = {0.0, 0.1, 0.2};
  const std::size_t frame_levels[] = {
      0, static_cast<std::size_t>(gamma - 1),
      static_cast<std::size_t>(gamma + 1)};
  const double loss_levels[] = {0.0, 0.5, 1.0};
  for (double crash : crash_rates) {
    for (std::size_t frames : frame_levels) {
      for (double loss : loss_levels) {
        char label[64];
        std::snprintf(label, sizeof(label),
                      "crash=%.1f frame=%zu loss=%.1f", crash, frames, loss);
        spec.points.push_back(
            {label,
             [nodes, crash, frames, loss](lw::scenario::ExperimentConfig& c) {
               c.fault = make_plan(nodes, crash, frames, loss);
             },
             0});
      }
    }
  }
  const auto result = bench::run_sweep(common, std::move(spec));

  if (common.json) {
    std::puts(bench::sweep_json(common, result).c_str());
    return bench::finish(args);
  }

  std::puts("== Fault resilience: detection under churn, framing, and link "
            "loss ==");
  std::printf("%zu nodes, M = 2, gamma = %d, %d run(s) per point, "
              "%d thread(s), %.1f s wall\n\n",
              nodes, gamma, common.runs, result.threads_used,
              result.wall_seconds);
  std::printf("%-28s %-8s %-10s %-12s %-10s %-10s %s\n", "point", "P(det)",
              "dropped", "framed(iso)", "crashed", "recovered",
              "recovery [s]");
  for (const auto& point : result.points) {
    const auto& agg = point.aggregate;
    char framed[32];
    std::snprintf(framed, sizeof(framed), "%.1f(%.1f)",
                  agg.framed_accusations, agg.framed_isolations);
    char recovery[32];
    if (agg.recovery_samples > 0) {
      std::snprintf(recovery, sizeof(recovery), "%.1f",
                    agg.mean_recovery_latency);
    } else {
      std::snprintf(recovery, sizeof(recovery), "-");
    }
    std::printf("%-28s %-8.2f %-10.3f %-12s %-10.1f %-10.1f %s%s\n",
                point.label.c_str(), agg.detection_probability,
                agg.fraction_dropped, framed, agg.nodes_crashed,
                agg.nodes_recovered, recovery,
                agg.failed_runs > 0 ? "  [failed runs]" : "");
  }

  std::puts("\nexpected shape: detection probability stays high under churn\n"
            "and link loss; framed isolations are zero whenever the framing\n"
            "guard count is below gamma (the paper's detection-confidence\n"
            "defense) and may become nonzero at or above it; every crashed\n"
            "node that recovers re-enters through dynamic join (recovery\n"
            "latency is the time back to the first re-authenticated\n"
            "neighbor).");
  return bench::finish(args);
}
