// Section 5.2: memory, computation, and bandwidth overhead of LITEWORP —
// the analytical model side by side with measurements of the live data
// structures from a real simulation run.
//
//   ./bench_sec52_cost [--nodes=100] [--duration=400] [--seed=600]
//                      [--json]
//
// Standard flags (bench_common.h): --seed seeds the single live
// measurement run; --json emits the analytic cost table as JSON rows;
// --runs/--threads are accepted for CLI uniformity but unused (one
// diagnostic run, not a sweep).
#include <cstdio>

#include "analysis/cost_model.h"
#include "bench_common.h"
#include "scenario/network.h"
#include "util/config.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 1, 600);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 100));
  const double duration = args.get_double("duration", 400.0);
  const std::uint64_t seed = common.seed;
  if (int status = bench::finish(args)) return status;

  if (common.json) {
    lw::analysis::CostParams params;
    params.route_establishment_rate = 0.5;
    bench::JsonRows rows;
    for (double nb : {4.0, 8.0, 10.0, 16.0}) {
      params.average_neighbors = nb;
      rows.field("nb", nb)
          .field("neighbor_list_bytes",
                 static_cast<double>(lw::analysis::neighbor_list_bytes(nb)))
          .field("neighbor_list_bytes_paper",
                 static_cast<double>(
                     lw::analysis::neighbor_list_bytes_paper(nb)))
          .field("total_state_bytes",
                 static_cast<double>(
                     lw::analysis::total_state_bytes(params, 2.5, 3)));
      rows.end_row();
    }
    std::puts(rows.str().c_str());
    return bench::finish(args);
  }

  std::puts("== Section 5.2: cost analysis ==\n");

  std::puts("-- Analytical model --");
  std::printf("%-8s %-14s %-14s %-16s %s\n", "N_B", "NBLS [B]",
              "paper 5N_B^2", "watch buf [B]", "total state [B]");
  lw::analysis::CostParams params;
  params.route_establishment_rate = 0.5;
  for (double nb : {4.0, 8.0, 10.0, 16.0}) {
    params.average_neighbors = nb;
    std::printf("%-8.0f %-14zu %-14zu %-16zu %zu\n", nb,
                lw::analysis::neighbor_list_bytes(nb),
                lw::analysis::neighbor_list_bytes_paper(nb),
                lw::analysis::watch_buffer_bytes(
                    std::max(4.0, 4.0 * lw::analysis::watch_buffer_entries(
                                            params, 2.5))),
                lw::analysis::total_state_bytes(params, 2.5, 3));
  }
  std::printf("\nbandwidth: discovery (one-time) = %zu B/node; "
              "detection event = %zu B\n",
              lw::analysis::discovery_bandwidth_bytes(8.0),
              lw::analysis::detection_bandwidth_bytes(8.0));

  std::puts("\n-- Live measurement (simulation run with 2 colluders) --");
  auto config = lw::scenario::ExperimentConfig::table2_defaults();
  config.node_count = nodes;
  config.duration = duration;
  config.seed = seed;
  config.finalize();
  lw::scenario::Network net(config);
  net.run();

  std::size_t table_bytes = 0;
  std::size_t state_bytes = 0;
  std::size_t watch_peak = 0;
  std::size_t max_state = 0;
  std::size_t monitors = 0;
  for (lw::NodeId id = 0; id < net.size(); ++id) {
    const auto& node = net.node(id);
    table_bytes += node.table().storage_bytes();
    if (node.monitor() != nullptr) {
      ++monitors;
      const std::size_t s =
          node.monitor()->storage_bytes() + node.table().storage_bytes();
      state_bytes += s;
      max_state = std::max(max_state, s);
      watch_peak = std::max(watch_peak,
                            node.monitor()->watch_buffer().peak_entries());
    }
  }
  std::printf("average degree            : %.2f\n", net.average_degree());
  std::printf("mean neighbor-table bytes : %.1f\n",
              static_cast<double>(table_bytes) / net.size());
  std::printf("mean total state bytes    : %.1f  (max %zu)\n",
              static_cast<double>(state_bytes) / monitors, max_state);
  std::printf("peak watch-buffer entries : %zu (20 B each)\n", watch_peak);

  const auto& phy = net.medium().stats();
  const double discovery_airtime =
      phy.airtime_by_type[static_cast<std::size_t>(
          lw::pkt::PacketType::kHello)] +
      phy.airtime_by_type[static_cast<std::size_t>(
          lw::pkt::PacketType::kHelloReply)] +
      phy.airtime_by_type[static_cast<std::size_t>(
          lw::pkt::PacketType::kNeighborList)];
  const double alert_airtime = phy.airtime_by_type[static_cast<std::size_t>(
      lw::pkt::PacketType::kAlert)];
  double total_airtime = 0.0;
  for (double a : phy.airtime_by_type) total_airtime += a;
  std::printf("bandwidth overhead        : discovery %.2f%% + alerts %.2f%% "
              "of all airtime\n",
              100.0 * discovery_airtime / total_airtime,
              100.0 * alert_airtime / total_airtime);

  std::puts("\nexpected shape: per-node state well under 1 KB (paper: NBLS\n"
            "< 0.5 KB at N_B = 10, watch buffer ~4 entries); LITEWORP\n"
            "bandwidth only at initialization and on detection.");
  return bench::finish(args);
}
