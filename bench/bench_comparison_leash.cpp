// Comparison harness: LITEWORP vs temporal packet leashes (Hu et al.) —
// the quantitative version of the paper's Section 2 related-work argument.
//
// For each attack mode, three defenses run on the same field and seeds:
// none, leash-only, LITEWORP-only. Columns are the wormhole's footprint.
//
//   ./bench_comparison_leash [--runs=2] [--duration=400] [--nodes=60]
//                            [--seed=900] [--perfect_clocks=false]
#include <cstdio>
#include <string>

#include "attack/modes.h"
#include "scenario/runner.h"
#include "util/config.h"

namespace {

struct Cell {
  double wormhole_routes = 0.0;
  double drops = 0.0;
  double isolated = 0.0;
};

Cell run_cell(lw::attack::WormholeMode mode, int malicious, int defense,
              int runs, double duration, std::size_t nodes,
              std::uint64_t seed, bool perfect_clocks) {
  Cell cell;
  for (int run = 0; run < runs; ++run) {
    auto config = lw::scenario::ExperimentConfig::table2_defaults();
    config.node_count = nodes;
    config.seed = seed + static_cast<std::uint64_t>(run);
    config.duration = duration;
    config.malicious_count = static_cast<std::size_t>(malicious);
    config.attack.mode = mode;
    config.liteworp.enabled = defense == 2;
    config.leash.enabled = defense == 1;
    if (perfect_clocks) {
      config.leash.sync_error = 0.0;
      config.leash.processing_slack = 0.0;
    }
    config.finalize();
    auto r = lw::scenario::run_experiment(config);
    cell.wormhole_routes += static_cast<double>(r.wormhole_routes);
    cell.drops += static_cast<double>(r.data_dropped_malicious);
    cell.isolated += r.malicious_count
                         ? static_cast<double>(r.malicious_isolated) /
                               static_cast<double>(r.malicious_count)
                         : 0.0;
  }
  cell.wormhole_routes /= runs;
  cell.drops /= runs;
  cell.isolated /= runs;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const int runs = args.get_int("runs", 2);
  const double duration = args.get_double("duration", 400.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 900));
  const bool perfect_clocks = args.get_bool("perfect_clocks", false);

  std::puts("== LITEWORP vs temporal packet leashes (Section 2 argument) ==");
  std::printf("%zu nodes, %.0f s, %d run(s); leash clock sync: %s\n\n",
              nodes, duration, runs,
              perfect_clocks ? "perfect" : "1 us (TIK-era)");
  std::printf("%-24s | %-26s | %-26s | %s\n", "",
              "wormhole routes", "wormhole data drops", "isolated frac");
  std::printf("%-24s | %-8s %-8s %-8s | %-8s %-8s %-8s | %s\n", "mode",
              "none", "leash", "LITEWORP", "none", "leash", "LITEWORP",
              "LITEWORP");

  for (const auto& row : lw::attack::attack_mode_table()) {
    Cell none = run_cell(row.mode, row.min_compromised_nodes, 0, runs,
                         duration, nodes, seed, perfect_clocks);
    Cell leash = run_cell(row.mode, row.min_compromised_nodes, 1, runs,
                          duration, nodes, seed, perfect_clocks);
    Cell lworp = run_cell(row.mode, row.min_compromised_nodes, 2, runs,
                          duration, nodes, seed, perfect_clocks);
    std::printf("%-24s | %-8.1f %-8.1f %-8.1f | %-8.0f %-8.0f %-8.0f | %.2f\n",
                std::string(row.name).c_str(), none.wormhole_routes,
                leash.wormhole_routes, lworp.wormhole_routes, none.drops,
                leash.drops, lworp.drops, lworp.isolated);
  }

  std::puts(
      "\nexpected shape (the paper's related-work argument, measured):\n"
      "  - packet relay: both defenses stop the forged link (stale stamp\n"
      "    vs neighbor-list check);\n"
      "  - high power: LITEWORP rejects via neighbor lists; the leash\n"
      "    needs perfect clocks to see sub-microsecond extra flight\n"
      "    (rerun with --perfect_clocks=true);\n"
      "  - encapsulation / out-of-band INSIDER tunnels: the leash is\n"
      "    blind (fresh truthful stamps at both tunnel ends); LITEWORP\n"
      "    detects AND isolates;\n"
      "  - protocol deviation: neither helps;\n"
      "  - only LITEWORP ever removes the attacker (isolated column).");
  return 0;
}
