// Comparison harness: the defense zoo head to head — LITEWORP's guard
// monitoring vs temporal packet leashes (Hu et al.) vs the Z-score
// neighbor-table detector vs no defense — the quantitative version of the
// paper's Section 2 related-work argument.
//
// For each attack mode, every registered backend runs on the same field
// and seeds (common random numbers). Columns are the wormhole's footprint.
//
//   ./bench_comparison_leash [--runs=2] [--seed=900] [--threads=1]
//                            [--json] [--duration=400] [--nodes=60]
//                            [--perfect_clocks=false]
//
// Standard flags (bench_common.h): --runs replicas per (mode, defense)
// cell, --seed base seed, --threads sweep workers (results identical for
// any count), --json machine-readable sweep dump. Backend parameters are
// tuned with the shared --defense-opt flag, e.g.
// --defense-opt=zscore.z_threshold=3 (applied to every point).
#include <cstdio>
#include <string>
#include <vector>

#include "attack/modes.h"
#include "bench_common.h"
#include "defense/defense.h"
#include "scenario/sweep.h"
#include "util/config.h"

namespace {

/// Backends in table-column order: baseline first, detectors last.
const std::vector<std::string> kDefenses = {"none", "leash", "zscore",
                                            "liteworp"};

double isolated_fraction(const lw::scenario::SweepPointResult& point) {
  double isolated = 0.0;
  for (const auto& r : point.replicas) {
    isolated += r.malicious_count
                    ? static_cast<double>(r.malicious_isolated) /
                          static_cast<double>(r.malicious_count)
                    : 0.0;
  }
  return isolated / static_cast<double>(point.replicas.size());
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 2, 900);
  const double duration = args.get_double("duration", 400.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 60));
  const bool perfect_clocks = args.get_bool("perfect_clocks", false);
  if (int status = bench::finish(args)) return status;

  lw::scenario::SweepSpec spec;
  spec.base = lw::scenario::ExperimentConfig::table2_defaults();
  spec.base.node_count = nodes;
  spec.base.duration = duration;
  // Points in row-major (mode, defense) order, defenses as in kDefenses.
  for (const auto& row : lw::attack::attack_mode_table()) {
    for (const std::string& defense : kDefenses) {
      const auto mode = row.mode;
      const int malicious = row.min_compromised_nodes;
      spec.points.push_back(
          {std::string(row.name) + " / " + defense,
           [mode, malicious, defense,
            perfect_clocks](lw::scenario::ExperimentConfig& c) {
             c.malicious_count = static_cast<std::size_t>(malicious);
             c.attack.mode = mode;
             c.defense.name = defense;
             if (perfect_clocks) {
               c.defense.leash.sync_error = 0.0;
               c.defense.leash.processing_slack = 0.0;
             }
           },
           0});
    }
  }
  const auto result = bench::run_sweep(common, std::move(spec));

  if (common.json) {
    std::puts(bench::sweep_json(common, result).c_str());
    return bench::finish(args);
  }

  std::puts("== Defense zoo vs the attack taxonomy (Section 2 argument) ==");
  std::printf("%zu nodes, %.0f s, %d run(s); leash clock sync: %s; "
              "%d thread(s), %.1f s wall\n\n",
              nodes, duration, common.runs,
              perfect_clocks ? "perfect" : "1 us (TIK-era)",
              result.threads_used, result.wall_seconds);
  std::printf("%-24s | %-35s | %-35s | %s\n", "",
              "wormhole routes", "wormhole data drops", "isolated frac");
  std::printf("%-24s | %-8s %-8s %-8s %-8s | %-8s %-8s %-8s %-8s | "
              "%-8s %s\n",
              "mode", "none", "leash", "zscore", "litewrp", "none", "leash",
              "zscore", "litewrp", "zscore", "litewrp");

  std::size_t p = 0;
  for (const auto& row : lw::attack::attack_mode_table()) {
    const auto& none = result.points[p];
    const auto& leash = result.points[p + 1];
    const auto& zscore = result.points[p + 2];
    const auto& lworp = result.points[p + 3];
    p += kDefenses.size();
    std::printf("%-24s | %-8.1f %-8.1f %-8.1f %-8.1f | "
                "%-8.0f %-8.0f %-8.0f %-8.0f | %-8.2f %.2f\n",
                std::string(row.name).c_str(),
                none.aggregate.wormhole_routes,
                leash.aggregate.wormhole_routes,
                zscore.aggregate.wormhole_routes,
                lworp.aggregate.wormhole_routes,
                none.aggregate.data_dropped_malicious,
                leash.aggregate.data_dropped_malicious,
                zscore.aggregate.data_dropped_malicious,
                lworp.aggregate.data_dropped_malicious,
                isolated_fraction(zscore), isolated_fraction(lworp));
  }

  std::puts(
      "\nexpected shape (the paper's related-work argument, measured):\n"
      "  - packet relay: leash and LITEWORP both stop the forged link\n"
      "    (stale stamp vs neighbor-list check);\n"
      "  - high power: LITEWORP rejects via neighbor lists; the leash\n"
      "    needs perfect clocks to see sub-microsecond extra flight\n"
      "    (rerun with --perfect_clocks=true);\n"
      "  - encapsulation / out-of-band INSIDER tunnels: the leash is\n"
      "    blind (fresh truthful stamps at both tunnel ends); LITEWORP\n"
      "    detects AND isolates, and the Z-score detector flags the\n"
      "    endpoints statistically;\n"
      "  - protocol deviation: no backend helps;\n"
      "  - only the accusation-based backends (LITEWORP, zscore) ever\n"
      "    remove the attacker (isolated columns).");
  return bench::finish(args);
}
