// Figure 8: cumulative number of data packets dropped by the wormhole vs
// simulation time — 100 nodes, M = 2 and M = 4 colluders, with and without
// LITEWORP; attack starts at t = 50 s.
//
// Expected shape (paper): without LITEWORP the cumulative count climbs for
// the whole run; with LITEWORP it flattens shortly after the wormhole is
// isolated (a short tail while stale routes drain), at a level orders of
// magnitude below the baseline.
//
//   ./bench_fig8_dropped_over_time [--runs=3] [--seed=300] [--threads=1]
//                                  [--json] [--duration=2000] [--nodes=100]
//                                  [--dt=100]
//
// Standard flags (bench_common.h): --runs replicas per series, --seed base
// seed, --threads sweep workers (results identical for any count), --json
// emits the four averaged time series as JSON rows.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "scenario/sweep.h"
#include "stats/metrics.h"
#include "util/config.h"

namespace {

/// Run-averaged cumulative drop counts sampled every dt.
std::vector<double> averaged_series(
    const lw::scenario::SweepPointResult& point, double duration, double dt) {
  const std::size_t samples = static_cast<std::size_t>(duration / dt) + 1;
  std::vector<double> cumulative(samples, 0.0);
  for (const auto& replica : point.replicas) {
    for (std::size_t i = 0; i < samples; ++i) {
      cumulative[i] += static_cast<double>(
          lw::stats::MetricsCollector::cumulative_at(
              replica.drop_times, static_cast<double>(i) * dt));
    }
  }
  for (double& v : cumulative) {
    v /= static_cast<double>(point.replicas.size());
  }
  return cumulative;
}

double mean_latency(const lw::scenario::SweepPointResult& point) {
  return point.aggregate.mean_isolation_latency
             ? *point.aggregate.mean_isolation_latency
             : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 3, 300);
  const double duration = args.get_double("duration", 2000.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 100));
  const double dt = args.get_double("dt", 100.0);
  if (int status = bench::finish(args)) return status;

  lw::scenario::SweepSpec spec;
  spec.base = lw::scenario::ExperimentConfig::table2_defaults();
  spec.base.node_count = nodes;
  spec.base.duration = duration;
  const struct {
    const char* label;
    std::size_t malicious;
    bool liteworp;
  } series[] = {{"M=2 baseline", 2, false},
                {"M=4 baseline", 4, false},
                {"M=2 LITEWORP", 2, true},
                {"M=4 LITEWORP", 4, true}};
  for (const auto& s : series) {
    const std::size_t malicious = s.malicious;
    const bool liteworp = s.liteworp;
    spec.points.push_back(
        {s.label,
         [malicious, liteworp](lw::scenario::ExperimentConfig& c) {
           c.malicious_count = malicious;
           c.defense.name = liteworp ? "liteworp" : "none";
         },
         0});
  }
  const auto result = bench::run_sweep(common, std::move(spec));

  std::vector<std::vector<double>> curves;
  curves.reserve(result.points.size());
  for (const auto& point : result.points) {
    curves.push_back(averaged_series(point, duration, dt));
  }

  if (common.json) {
    bench::JsonRows rows;
    for (std::size_t i = 0; i < curves.front().size(); ++i) {
      rows.field("time", static_cast<double>(i) * dt);
      for (std::size_t p = 0; p < result.points.size(); ++p) {
        rows.field(result.points[p].label, curves[p][i]);
      }
      rows.end_row();
    }
    std::puts(rows.str().c_str());
    return bench::finish(args);
  }

  std::puts("== Figure 8: cumulative packets dropped by the wormhole ==");
  std::printf("%zu nodes, attack at t=50 s, %d run(s) averaged, "
              "%d thread(s), %.1f s wall\n\n",
              nodes, common.runs, result.threads_used, result.wall_seconds);

  std::printf("%-8s %14s %14s %14s %14s\n", "time[s]", "M=2 baseline",
              "M=4 baseline", "M=2 LITEWORP", "M=4 LITEWORP");
  for (std::size_t i = 0; i < curves.front().size(); ++i) {
    std::printf("%-8.0f %14.1f %14.1f %14.1f %14.1f\n",
                static_cast<double>(i) * dt, curves[0][i], curves[1][i],
                curves[2][i], curves[3][i]);
  }

  std::printf("\nisolation latency (mean over isolated runs): "
              "M=2: %.1f s, M=4: %.1f s after attack start\n",
              mean_latency(result.points[2]), mean_latency(result.points[3]));
  std::printf("final cumulative drops: baseline M=2: %.0f, M=4: %.0f; "
              "LITEWORP M=2: %.0f, M=4: %.0f\n",
              curves[0].back(), curves[1].back(), curves[2].back(),
              curves[3].back());
  std::puts("\nexpected shape: baseline climbs for the whole run; LITEWORP\n"
            "flattens shortly after isolation (short stale-route tail).");
  return bench::finish(args);
}
