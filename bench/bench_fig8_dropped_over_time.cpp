// Figure 8: cumulative number of data packets dropped by the wormhole vs
// simulation time — 100 nodes, M = 2 and M = 4 colluders, with and without
// LITEWORP; attack starts at t = 50 s.
//
// Expected shape (paper): without LITEWORP the cumulative count climbs for
// the whole run; with LITEWORP it flattens shortly after the wormhole is
// isolated (a short tail while stale routes drain), at a level orders of
// magnitude below the baseline.
//
//   ./bench_fig8_dropped_over_time [--runs=3] [--duration=2000]
//                                  [--nodes=100] [--dt=100] [--seed=300]
#include <cstdio>
#include <optional>
#include <vector>

#include "scenario/runner.h"
#include "util/config.h"

namespace {

struct Series {
  std::vector<double> cumulative;  // averaged over runs
  double isolation_latency_sum = 0.0;
  int isolated_runs = 0;
};

Series run_series(std::size_t nodes, std::size_t malicious, bool liteworp,
                  int runs, double duration, double dt,
                  std::uint64_t base_seed) {
  Series series;
  const std::size_t samples = static_cast<std::size_t>(duration / dt) + 1;
  series.cumulative.assign(samples, 0.0);
  for (int run = 0; run < runs; ++run) {
    auto config = lw::scenario::ExperimentConfig::table2_defaults();
    config.node_count = nodes;
    config.seed = base_seed + static_cast<std::uint64_t>(run);
    config.duration = duration;
    config.malicious_count = malicious;
    config.liteworp.enabled = liteworp;
    config.finalize();
    auto result = lw::scenario::run_experiment(config);
    for (std::size_t i = 0; i < samples; ++i) {
      series.cumulative[i] += static_cast<double>(
          lw::stats::MetricsCollector::cumulative_at(
              result.drop_times, static_cast<double>(i) * dt));
    }
    if (result.isolation_latency) {
      series.isolation_latency_sum += *result.isolation_latency;
      ++series.isolated_runs;
    }
  }
  for (double& v : series.cumulative) v /= runs;
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const int runs = args.get_int("runs", 3);
  const double duration = args.get_double("duration", 2000.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 100));
  const double dt = args.get_double("dt", 100.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 300));

  std::puts("== Figure 8: cumulative packets dropped by the wormhole ==");
  std::printf("%zu nodes, attack at t=50 s, %d run(s) averaged\n\n", nodes,
              runs);

  Series base2 = run_series(nodes, 2, false, runs, duration, dt, seed);
  Series base4 = run_series(nodes, 4, false, runs, duration, dt, seed);
  Series lw2 = run_series(nodes, 2, true, runs, duration, dt, seed);
  Series lw4 = run_series(nodes, 4, true, runs, duration, dt, seed);

  std::printf("%-8s %14s %14s %14s %14s\n", "time[s]", "M=2 baseline",
              "M=4 baseline", "M=2 LITEWORP", "M=4 LITEWORP");
  for (std::size_t i = 0; i < base2.cumulative.size(); ++i) {
    std::printf("%-8.0f %14.1f %14.1f %14.1f %14.1f\n",
                static_cast<double>(i) * dt, base2.cumulative[i],
                base4.cumulative[i], lw2.cumulative[i], lw4.cumulative[i]);
  }

  auto mean_latency = [](const Series& s) {
    return s.isolated_runs ? s.isolation_latency_sum / s.isolated_runs : -1.0;
  };
  std::printf("\nisolation latency (mean over isolated runs): "
              "M=2: %.1f s, M=4: %.1f s after attack start\n",
              mean_latency(lw2), mean_latency(lw4));
  std::printf("final cumulative drops: baseline M=2: %.0f, M=4: %.0f; "
              "LITEWORP M=2: %.0f, M=4: %.0f\n",
              base2.cumulative.back(), base4.cumulative.back(),
              lw2.cumulative.back(), lw4.cumulative.back());
  std::puts("\nexpected shape: baseline climbs for the whole run; LITEWORP\n"
            "flattens shortly after isolation (short stale-route tail).");
  return 0;
}
