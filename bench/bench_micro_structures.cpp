// Google-benchmark microbenchmarks of the data structures the cost
// analysis budgets: crypto primitives, watch buffer, neighbor table, route
// cache, event queue, and the medium's transmit path. The paper quotes
// MICA-mote lookup times; these are the same operations on this
// implementation.
#include <benchmark/benchmark.h>

#include "crypto/hmac.h"
#include "crypto/key_manager.h"
#include "crypto/sha256.h"
#include "liteworp/watch_buffer.h"
#include "neighbor/neighbor_table.h"
#include "packet/packet.h"
#include "routing/route_cache.h"
#include "sim/simulator.h"
#include "topology/disc_graph.h"
#include "topology/field.h"
#include "util/arena.h"
#include "util/rng.h"

namespace {

void BM_Sha256_64B(benchmark::State& state) {
  std::string message(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(lw::crypto::Sha256::hash(message));
  }
  state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::string message(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(lw::crypto::Sha256::hash(message));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_HmacTag(benchmark::State& state) {
  lw::crypto::KeyManager keys(7);
  auto key = keys.pairwise_key(1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lw::crypto::make_tag(key, "alert|1|2|accused=9"));
  }
}
BENCHMARK(BM_HmacTag);

void BM_HmacTagNaive(benchmark::State& state) {
  // Reference point for BM_HmacTagMidstate: rebuild both pads and rehash
  // them for every tag (what the free-function path does).
  lw::crypto::KeyManager keys(7);
  auto key = keys.pairwise_key(1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lw::crypto::make_tag(key, "alert|1|2|accused=9"));
  }
}
BENCHMARK(BM_HmacTagNaive);

void BM_HmacTagMidstate(benchmark::State& state) {
  // Prepared-key fast path: the ipad/opad compression midstates are cached
  // once, so each tag costs the message blocks plus two finishes. This is
  // what KeyManager::sign does per authenticated packet field.
  lw::crypto::KeyManager keys(7);
  lw::crypto::HmacKey prepared{keys.pairwise_key(1, 2)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(prepared.tag("alert|1|2|accused=9"));
  }
}
BENCHMARK(BM_HmacTagMidstate);

void BM_HmacBatchSign(benchmark::State& state) {
  // The fused fan-out signing path: one alert payload tagged under k
  // pairwise keys in two multi-buffer SHA-256 sweeps. Compare per-tag cost
  // against BM_HmacTagMidstate (the serial path); range(0) is k.
  const std::size_t fanout = static_cast<std::size_t>(state.range(0));
  lw::crypto::KeyManager keys(7);
  keys.reserve_nodes(fanout + 1);
  std::vector<lw::NodeId> peers;
  for (std::size_t i = 1; i <= fanout; ++i) {
    peers.push_back(static_cast<lw::NodeId>(i));
  }
  std::vector<lw::crypto::AuthTag> tags(fanout);
  for (auto _ : state) {
    keys.sign_batch(0, peers, "alert|1|2|accused=9", tags.data());
    benchmark::DoNotOptimize(tags.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fanout));
}
BENCHMARK(BM_HmacBatchSign)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_HmacSerialSign(benchmark::State& state) {
  // Serial reference for BM_HmacBatchSign: same keys, same payload, one
  // midstate-cached HMAC at a time.
  const std::size_t fanout = static_cast<std::size_t>(state.range(0));
  lw::crypto::KeyManager keys(7);
  keys.reserve_nodes(fanout + 1);
  std::vector<lw::crypto::AuthTag> tags(fanout);
  for (auto _ : state) {
    for (std::size_t i = 1; i <= fanout; ++i) {
      tags[i - 1] = keys.sign(0, static_cast<lw::NodeId>(i),
                              "alert|1|2|accused=9");
    }
    benchmark::DoNotOptimize(tags.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fanout));
}
BENCHMARK(BM_HmacSerialSign)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ArenaPoolAllocFree(benchmark::State& state) {
  // Pool-arena recycle cost at a mixed working set: what every
  // steady-state container refill pays instead of malloc/free. The vector
  // round-trips release each block back to the size-class freelist.
  for (auto _ : state) {
    lw::util::PoolVector<std::uint64_t> small;
    small.resize(16);
    lw::util::PoolVector<std::uint64_t> medium;
    medium.resize(256);
    benchmark::DoNotOptimize(small.data());
    benchmark::DoNotOptimize(medium.data());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ArenaPoolAllocFree);

void BM_MallocFreeReference(benchmark::State& state) {
  // Heap reference for BM_ArenaPoolAllocFree: identical shapes through the
  // global allocator.
  for (auto _ : state) {
    std::vector<std::uint64_t> small;
    small.resize(16);
    std::vector<std::uint64_t> medium;
    medium.resize(256);
    benchmark::DoNotOptimize(small.data());
    benchmark::DoNotOptimize(medium.data());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MallocFreeReference);

void BM_PairwiseKeyDerivation(benchmark::State& state) {
  lw::crypto::KeyManager keys(7);
  lw::NodeId b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.pairwise_key(1, ++b % 1000));
  }
}
BENCHMARK(BM_PairwiseKeyDerivation);

void BM_WatchBufferRecordAndMatch(benchmark::State& state) {
  lw::lite::WatchBuffer buffer;
  lw::SeqNo seq = 0;
  double now = 0.0;
  for (auto _ : state) {
    ++seq;
    now += 0.01;
    lw::FlowKey flow{static_cast<lw::NodeId>(seq % 64), seq, 4};
    buffer.record_transmit(flow, 5, now, 2.0);
    benchmark::DoNotOptimize(buffer.has_transmit(flow, 5, now));
  }
}
BENCHMARK(BM_WatchBufferRecordAndMatch);

void BM_WatchBufferDropWatchCycle(benchmark::State& state) {
  lw::lite::WatchBuffer buffer;
  lw::SeqNo seq = 0;
  for (auto _ : state) {
    ++seq;
    lw::FlowKey flow{1, seq, 5};
    buffer.add_drop_watch(flow, 2, 3, 1.0, {});
    benchmark::DoNotOptimize(buffer.clear_drop_watch(flow, 2, 3));
  }
}
BENCHMARK(BM_WatchBufferDropWatchCycle);

void BM_PacketForwardCopy(benchmark::State& state) {
  // The per-hop relay copy on the forwarding hot path: route, neighbor
  // list, and per-recipient auth vectors are pre-reserved before the
  // assignment so a forward costs three sized allocations, not a
  // grow-as-you-go sequence.
  lw::pkt::PacketFactory factory;
  lw::pkt::Packet original = factory.make(lw::pkt::PacketType::kRouteReply);
  original.origin = 1;
  original.final_dst = 9;
  for (lw::NodeId hop = 0; hop < 8; ++hop) original.route.push_back(hop);
  for (lw::NodeId n = 20; n < 36; ++n) original.neighbor_list.push_back(n);
  for (lw::NodeId n = 20; n < 28; ++n) {
    original.alert_auth.push_back({n, lw::crypto::AuthTag{}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(factory.forward_copy(original));
  }
}
BENCHMARK(BM_PacketForwardCopy);

void BM_NeighborTableLookup(benchmark::State& state) {
  // The paper quotes ~2 us-scale lookups in a 100-entry structure on a
  // 4 MHz mote; this is the same lookup on the host CPU.
  lw::nbr::NeighborTable table;
  for (lw::NodeId n = 0; n < 100; ++n) {
    table.add_neighbor(n);
    table.set_neighbor_list(n, {1, 2, 3, 4, 5, 6, 7, 8});
  }
  lw::NodeId probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.is_active_neighbor(++probe % 128));
    benchmark::DoNotOptimize(table.in_list_of(probe % 100, 4));
  }
}
BENCHMARK(BM_NeighborTableLookup);

void BM_RouteCacheLookup(benchmark::State& state) {
  lw::routing::RouteCache cache(50.0);
  for (lw::NodeId d = 1; d <= 100; ++d) {
    cache.insert({0, 5, 9, d}, 0.0);
  }
  lw::NodeId probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(1 + (++probe % 100), 1.0));
  }
}
BENCHMARK(BM_RouteCacheLookup);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    lw::sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule((i * 7919) % 100 * 0.001, [] {});
    }
    sim.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_DiscGraphConstruction(benchmark::State& state) {
  lw::Rng rng(1);
  const double side = lw::topo::field_side_for_density(100, 30.0, 8.0);
  auto positions = lw::topo::place_uniform({side, side}, 100, rng);
  for (auto _ : state) {
    lw::topo::DiscGraph graph(positions, 30.0);
    benchmark::DoNotOptimize(graph.average_degree());
  }
}
BENCHMARK(BM_DiscGraphConstruction);

void BM_GuardsOfLink(benchmark::State& state) {
  lw::Rng rng(1);
  const double side = lw::topo::field_side_for_density(100, 30.0, 8.0);
  lw::topo::DiscGraph graph(lw::topo::place_uniform({side, side}, 100, rng),
                            30.0);
  lw::NodeId from = 0;
  for (auto _ : state) {
    from = (from + 1) % 100;
    const auto& nbrs = graph.neighbors(from);
    if (nbrs.empty()) continue;
    benchmark::DoNotOptimize(graph.guards_of_link(from, nbrs.front()));
  }
}
BENCHMARK(BM_GuardsOfLink);

}  // namespace

BENCHMARK_MAIN();
