// Figure 9: fraction of packets dropped and fraction of wormhole routes vs
// the number of compromised nodes M = 0..4, snapshot at the end of the
// run, baseline vs LITEWORP.
//
// Expected shape (paper): both fractions grow with M in the baseline
// (super-linearly for drops — wormhole routes attract traffic); with
// LITEWORP both stay near zero. M = 0 and M = 1 do no damage in the
// colluding tunnel modes (no wormhole can form).
//
//   ./bench_fig9_fractions_vs_m [--runs=2] [--duration=1500]
//                               [--nodes=100] [--seed=400] [--m_max=4]
#include <cstdio>

#include "scenario/runner.h"
#include "util/config.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const int runs = args.get_int("runs", 2);
  const double duration = args.get_double("duration", 1500.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 100));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 400));
  const int m_max = args.get_int("m_max", 4);

  std::puts("== Figure 9: damage fractions vs number of compromised nodes ==");
  std::printf("%zu nodes, %.0f s snapshot, %d run(s) averaged\n\n", nodes,
              duration, runs);
  std::printf("%-4s | %-22s | %-22s\n", "", "fraction dropped",
              "fraction wormhole routes");
  std::printf("%-4s | %-10s %-10s | %-10s %-10s\n", "M", "baseline",
              "LITEWORP", "baseline", "LITEWORP");
  std::puts("-----+-----------------------+----------------------");

  for (int m = 0; m <= m_max; ++m) {
    auto config = lw::scenario::ExperimentConfig::table2_defaults();
    config.node_count = nodes;
    config.duration = duration;
    config.malicious_count = static_cast<std::size_t>(m);

    config.liteworp.enabled = false;
    config.finalize();
    auto baseline = lw::scenario::average_runs(config, runs, seed);

    config.liteworp.enabled = true;
    config.finalize();
    auto guarded = lw::scenario::average_runs(config, runs, seed);

    std::printf("%-4d | %-10.4f %-10.4f | %-10.4f %-10.4f\n", m,
                baseline.fraction_dropped, guarded.fraction_dropped,
                baseline.fraction_wormhole_routes,
                guarded.fraction_wormhole_routes);
  }

  std::puts("\nexpected shape: baseline fractions grow with M (drops\n"
            "super-linearly -- wormhole routes attract traffic); LITEWORP\n"
            "columns stay near zero; M <= 1 does no damage (no colluder).");
  return 0;
}
