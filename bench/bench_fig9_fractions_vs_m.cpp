// Figure 9: fraction of packets dropped and fraction of wormhole routes vs
// the number of compromised nodes M = 0..4, snapshot at the end of the
// run, baseline vs LITEWORP.
//
// Expected shape (paper): both fractions grow with M in the baseline
// (super-linearly for drops — wormhole routes attract traffic); with
// LITEWORP both stay near zero. M = 0 and M = 1 do no damage in the
// colluding tunnel modes (no wormhole can form).
//
//   ./bench_fig9_fractions_vs_m [--runs=2] [--seed=400] [--threads=1]
//                               [--json] [--duration=1500] [--nodes=100]
//                               [--m_max=4]
//
// Standard flags (bench_common.h): --runs replicas per point, --seed base
// seed, --threads sweep workers (results identical for any count), --json
// machine-readable sweep dump.
#include <cstdio>

#include "bench_common.h"
#include "scenario/sweep.h"
#include "util/config.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 2, 400);
  const double duration = args.get_double("duration", 1500.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 100));
  const int m_max = args.get_int("m_max", 4);
  if (int status = bench::finish(args)) return status;

  lw::scenario::SweepSpec spec;
  spec.base = lw::scenario::ExperimentConfig::table2_defaults();
  spec.base.node_count = nodes;
  spec.base.duration = duration;
  for (int m = 0; m <= m_max; ++m) {
    for (bool liteworp : {false, true}) {
      spec.points.push_back(
          {"M=" + std::to_string(m) + (liteworp ? " liteworp" : " baseline"),
           [m, liteworp](lw::scenario::ExperimentConfig& c) {
             c.malicious_count = static_cast<std::size_t>(m);
             c.defense.name = liteworp ? "liteworp" : "none";
           },
           0});
    }
  }
  const auto result = bench::run_sweep(common, std::move(spec));

  if (common.json) {
    std::puts(bench::sweep_json(common, result).c_str());
    return bench::finish(args);
  }

  std::puts("== Figure 9: damage fractions vs number of compromised nodes ==");
  std::printf("%zu nodes, %.0f s snapshot, %d run(s) averaged, %d thread(s), "
              "%.1f s wall\n\n",
              nodes, duration, common.runs, result.threads_used,
              result.wall_seconds);
  std::printf("%-4s | %-22s | %-22s\n", "", "fraction dropped",
              "fraction wormhole routes");
  std::printf("%-4s | %-10s %-10s | %-10s %-10s\n", "M", "baseline",
              "LITEWORP", "baseline", "LITEWORP");
  std::puts("-----+-----------------------+----------------------");

  for (int m = 0; m <= m_max; ++m) {
    const auto& baseline = result.points[2 * m].aggregate;
    const auto& guarded = result.points[2 * m + 1].aggregate;
    std::printf("%-4d | %-10.4f %-10.4f | %-10.4f %-10.4f\n", m,
                baseline.fraction_dropped, guarded.fraction_dropped,
                baseline.fraction_wormhole_routes,
                guarded.fraction_wormhole_routes);
  }

  std::puts("\nexpected shape: baseline fractions grow with M (drops\n"
            "super-linearly -- wormhole routes attract traffic); LITEWORP\n"
            "columns stay near zero; M <= 1 does no damage (no colluder).");
  return bench::finish(args);
}
