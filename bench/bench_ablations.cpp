// Ablations of the design decisions DESIGN.md documents: what breaks (and
// how) when each calibration or refinement is removed. Not a paper figure
// — the justification record for every place this implementation deviates
// from a literal reading.
//
//   ./bench_ablations [--runs=2] [--seed=700] [--threads=1] [--json]
//                     [--nodes=100] [--duration=600]
//
// Standard flags (bench_common.h): --runs replicas per variant, --seed
// base seed, --threads sweep workers (results identical for any count),
// --json machine-readable sweep dump.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/sweep.h"
#include "util/config.h"

namespace {

struct Variant {
  std::string name;
  std::string expectation;
  std::function<void(lw::scenario::ExperimentConfig&)> tweak;
};

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 2, 700);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 100));
  const double duration = args.get_double("duration", 600.0);
  if (int status = bench::finish(args)) return status;

  const std::vector<Variant> variants = {
      {"default (calibrated)", "baseline for the rows below",
       [](lw::scenario::ExperimentConfig&) {}},
      {"strict per-link fabrication check",
       "false suspicions/isolations jump: every collision convicts",
       [](lw::scenario::ExperimentConfig& c) {
         c.defense.liteworp.strict_link_check = true;
       }},
      {"no kappa-block reset",
       "noise accumulates forever; honest nodes eventually convicted",
       [](lw::scenario::ExperimentConfig& c) {
         c.defense.liteworp.window_packets = 0;
       }},
      {"no link-layer ARQ",
       "multihop unicast dies to hidden terminals; delivery collapses",
       [](lw::scenario::ExperimentConfig& c) { c.mac.arq = false; }},
      {"no broadcast suppression",
       "flood airtime ~3x; more collisions, more noise",
       [](lw::scenario::ExperimentConfig& c) {
         c.routing.broadcast_suppression_copies = 1 << 20;
       }},
      {"RTS/CTS enabled (threshold 40 B)",
       "handshake overhead exceeds its hidden-terminal savings at 40 kbps",
       [](lw::scenario::ExperimentConfig& c) { c.mac.rts_threshold = 40; }},
      {"Table-2 literal lambda = 1/10 s",
       "past the congestion cliff: collisions ~25%, noise climbs",
       [](lw::scenario::ExperimentConfig& c) {
         c.traffic.data_rate = 1.0 / 10.0;
       }},
      {"gamma = 1 (single-guard isolation)",
       "fastest isolation, but a single framing guard could evict anyone",
       [](lw::scenario::ExperimentConfig& c) {
         c.defense.liteworp.detection_confidence = 1;
       }},
      {"naive attacker (announces colluder)",
       "admission checks kill the wormhole before guards even matter",
       [](lw::scenario::ExperimentConfig& c) {
         c.attack.smart_prev_hop = false;
       }},
  };

  lw::scenario::SweepSpec spec;
  spec.base = lw::scenario::ExperimentConfig::table2_defaults();
  spec.base.node_count = nodes;
  spec.base.duration = duration;
  spec.base.malicious_count = 2;
  for (const auto& variant : variants) {
    spec.points.push_back({variant.name, variant.tweak, 0});
  }
  const auto result = bench::run_sweep(common, std::move(spec));

  if (common.json) {
    std::puts(bench::sweep_json(common, result).c_str());
    return bench::finish(args);
  }

  std::puts("== Design-decision ablations ==");
  std::printf("%zu nodes, M = 2 out-of-band colluders, %.0f s, %d run(s), "
              "%d thread(s), %.1f s wall\n\n",
              nodes, duration, common.runs, result.threads_used,
              result.wall_seconds);
  std::printf("%-38s %9s %9s %8s %9s %9s %8s\n", "variant", "delivery",
              "collide", "isolated", "latency", "falseiso", "wormrte");

  for (std::size_t v = 0; v < variants.size(); ++v) {
    const auto& point = result.points[v];
    double delivery = 0.0;
    double collide = 0.0;
    double isolated = 0.0;
    double latency_sum = 0.0;
    int latency_n = 0;
    for (const auto& r : point.replicas) {
      delivery += r.data_originated
                      ? static_cast<double>(r.data_delivered) /
                            static_cast<double>(r.data_originated)
                      : 0.0;
      collide += r.frames_transmitted
                     ? static_cast<double>(r.frames_collided) /
                           static_cast<double>(r.frames_collided +
                                               r.frames_delivered)
                     : 0.0;
      isolated += r.malicious_count
                      ? static_cast<double>(r.malicious_isolated) /
                            static_cast<double>(r.malicious_count)
                      : 1.0;
      if (r.isolation_latency) {
        latency_sum += *r.isolation_latency;
        ++latency_n;
      }
    }
    const double n = static_cast<double>(point.replicas.size());
    std::printf("%-38s %8.1f%% %8.1f%% %8.2f %9s %9.1f %8.1f\n",
                variants[v].name.c_str(), 100.0 * delivery / n,
                100.0 * collide / n, isolated / n,
                latency_n ? std::to_string(static_cast<int>(
                                latency_sum / latency_n))
                                .c_str()
                          : "--",
                point.aggregate.false_isolations,
                point.aggregate.wormhole_routes);
    std::printf("%-38s   -> %s\n", "", variants[v].expectation.c_str());
  }
  return bench::finish(args);
}
