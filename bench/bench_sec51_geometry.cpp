// Section 5.1 geometry: guard-region areas and expected guard counts.
//
// Prints the closed-form quantities next to the figures the paper quotes.
// (The paper rounds aggressively; we report exact values.)
//
//   ./bench_sec51_geometry [--json]
//
// Standard flags (bench_common.h): --json emits the lens-area and
// guard-count tables as JSON rows; --runs/--seed/--threads are accepted
// for CLI uniformity but unused (closed-form evaluation).
#include <cstdio>

#include "analysis/coverage.h"
#include "bench_common.h"
#include "util/config.h"
#include "util/math_util.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 1, 0);

  if (common.json) {
    bench::JsonRows rows;
    for (double x = 0.0; x <= 1.0001; x += 0.125) {
      rows.field("kind", std::string("lens_area"))
          .field("x_over_r", x)
          .field("area_over_r2", lw::analysis::lens_area(x, 1.0));
      rows.end_row();
    }
    for (double nb : {3.0, 5.0, 8.0, 10.0, 15.0, 20.0}) {
      rows.field("kind", std::string("guards"))
          .field("nb", nb)
          .field("expected_guards", lw::analysis::expected_guards(nb))
          .field("min_guards", lw::analysis::min_guards(nb));
      rows.end_row();
    }
    std::puts(rows.str().c_str());
    return bench::finish(args);
  }

  std::puts("== Section 5.1: guard geometry ==\n");

  std::puts("Lens area A(x) between two discs of radius r, centers x apart");
  std::puts("(the region from which a node guards the link S -> D):\n");
  std::printf("  %-8s %-12s %s\n", "x/r", "A(x)/r^2", "A(x)/(pi r^2)");
  for (double x = 0.0; x <= 1.0001; x += 0.125) {
    const double area = lw::analysis::lens_area(x, 1.0);
    std::printf("  %-8.3f %-12.4f %.4f\n", x, area, area / lw::kPi);
  }

  std::printf("\n  minimum area (x = r): %.4f r^2 = %.3f pi r^2   "
              "(paper: \"0.36\")\n",
              lw::analysis::min_lens_area(1.0),
              lw::analysis::min_lens_area(1.0) / lw::kPi);
  std::printf("  expected area E[A]  : %.4f r^2 = %.3f pi r^2   "
              "(paper: \"1.6 r^2\")\n",
              lw::analysis::expected_lens_area(1.0),
              lw::analysis::expected_lens_area(1.0) / lw::kPi);

  std::puts("\nExpected guards per link, g = E[A] d (N_B = pi r^2 d):\n");
  std::printf("  %-8s %-12s %s\n", "N_B", "E[guards]", "min guards");
  for (double nb : {3.0, 5.0, 8.0, 10.0, 15.0, 20.0}) {
    std::printf("  %-8.1f %-12.2f %.2f\n", nb,
                lw::analysis::expected_guards(nb),
                lw::analysis::min_guards(nb));
  }
  std::printf("\n  g = %.4f N_B (paper: 0.51 N_B), g_min = %.4f N_B "
              "(paper: 0.36 pi r^2 d)\n",
              lw::analysis::expected_guards(1.0),
              lw::analysis::min_guards(1.0));

  std::puts("\nDesign query: density required for a detection target");
  std::puts("(kappa=7, k=5, gamma=3, P_C = 0.05 at N_B = 3):\n");
  lw::analysis::CoverageParams params;
  for (double target : {0.80, 0.90, 0.95, 0.99}) {
    const double nb =
        lw::analysis::neighbors_for_detection(params, target, 3.0, 40.0);
    if (nb > 0) {
      std::printf("  P(detect) >= %.2f  needs N_B >= %.1f\n", target, nb);
    } else {
      std::printf("  P(detect) >= %.2f  unattainable below N_B = 40\n",
                  target);
    }
  }
  return bench::finish(args);
}
