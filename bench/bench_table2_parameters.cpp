// Table 2: input parameter values for the LITEWORP simulations.
//
// Prints the configuration every simulation bench runs with, validates the
// derived quantities (field side vs density, discovery windows), and
// documents the single calibrated deviation (lambda).
#include <cstdio>
#include <iostream>

#include "scenario/config.h"
#include "topology/field.h"
#include "util/math_util.h"

int main() {
  auto config = lw::scenario::ExperimentConfig::table2_defaults();

  std::puts("== Table 2: input parameters (as configured) ==\n");
  std::cout << config.summary();

  std::puts("\n== Derived / validation ==\n");
  for (std::size_t n : {20u, 50u, 100u, 150u}) {
    const double side = lw::topo::field_side_for_density(
        n, config.radio_range, config.target_neighbors);
    std::printf("  N = %3zu  ->  field %6.1f x %6.1f m (paper: 80x80 .. "
                "200x200 over the same range)\n",
                n, side, side);
  }
  const double density = config.target_neighbors /
                         (lw::kPi * config.radio_range * config.radio_range);
  std::printf("  node density d = %.5f /m^2,  N_B = pi r^2 d = %.2f\n",
              density,
              lw::kPi * config.radio_range * config.radio_range * density);

  std::puts(
      "\n== Calibration note ==\n"
      "  Table 2 quotes lambda = 1/10 s per node. On this library's plain\n"
      "  CSMA 40 kbps channel that load sits past the congestion cliff\n"
      "  (~25% collision rates, far above the P_C ~= 0.05-0.13 assumed by\n"
      "  the paper's own Section 5.1 analysis). The benches run lambda =\n"
      "  1/20 s, which lands measured collision rates at ~10% for N_B = 8\n"
      "  -- exactly the analysis' operating point. All other Table 2\n"
      "  values are used literally. See DESIGN.md for details.");
  return 0;
}
