// Table 2: input parameter values for the LITEWORP simulations.
//
// Prints the configuration every simulation bench runs with, validates the
// derived quantities (field side vs density, discovery windows), and
// documents the single calibrated deviation (lambda).
//
//   ./bench_table2_parameters [--json]
//
// Standard flags (bench_common.h): --json emits the parameters as a JSON
// row; --runs/--seed/--threads are accepted for CLI uniformity but unused
// (this bench prints configuration, it does not simulate).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "scenario/config.h"
#include "topology/field.h"
#include "util/config.h"
#include "util/math_util.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 1, 1);
  auto config = lw::scenario::ExperimentConfig::table2_defaults();

  if (common.json) {
    bench::JsonRows rows;
    rows.field("node_count", static_cast<double>(config.node_count))
        .field("radio_range_m", config.radio_range)
        .field("target_neighbors", config.target_neighbors)
        .field("bandwidth_bps", config.phy.bandwidth_bps)
        .field("data_rate_per_s", config.traffic.data_rate)
        .field("destination_change_rate_per_s",
               config.traffic.destination_change_rate)
        .field("route_timeout_s", config.routing.route_timeout)
        .field("attack_start_s", config.attack.start_time)
        .field("malicious_count", static_cast<double>(config.malicious_count))
        .field("duration_s", config.duration)
        .field("gamma",
               static_cast<double>(
                   config.defense.liteworp.detection_confidence));
    rows.end_row();
    std::puts(rows.str().c_str());
    return bench::finish(args);
  }

  std::puts("== Table 2: input parameters (as configured) ==\n");
  std::cout << config.summary();

  std::puts("\n== Derived / validation ==\n");
  for (std::size_t n : {20u, 50u, 100u, 150u}) {
    const double side = lw::topo::field_side_for_density(
        n, config.radio_range, config.target_neighbors);
    std::printf("  N = %3zu  ->  field %6.1f x %6.1f m (paper: 80x80 .. "
                "200x200 over the same range)\n",
                n, side, side);
  }
  const double density = config.target_neighbors /
                         (lw::kPi * config.radio_range * config.radio_range);
  std::printf("  node density d = %.5f /m^2,  N_B = pi r^2 d = %.2f\n",
              density,
              lw::kPi * config.radio_range * config.radio_range * density);

  std::puts(
      "\n== Calibration note ==\n"
      "  Table 2 quotes lambda = 1/10 s per node. On this library's plain\n"
      "  CSMA 40 kbps channel that load sits past the congestion cliff\n"
      "  (~25% collision rates, far above the P_C ~= 0.05-0.13 assumed by\n"
      "  the paper's own Section 5.1 analysis). The benches run lambda =\n"
      "  1/20 s, which lands measured collision rates at ~10% for N_B = 8\n"
      "  -- exactly the analysis' operating point. All other Table 2\n"
      "  values are used literally. See DESIGN.md for details.");
  return bench::finish(args);
}
