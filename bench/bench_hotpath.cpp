// Hot-path macrobenchmark: whole-stack frames/sec at small, medium, and
// large N, with and without collisions — the perf trajectory anchor.
//
//   ./bench_hotpath [--runs=1] [--seed=1] [--nodes=50,200,500,1000c]
//                   [--duration=120] [--json] [--check=BENCH_baseline.json]
//                   [--series[=B]] [--watch]
//
// A --nodes entry may carry a `c` (collisions only) or `i` (ideal only)
// suffix; bare counts run both variants. The default ends with 1000c: a
// large-N collisions case that exercises the dense-neighborhood fan-out
// without paying for its ideal twin.
//
// With --series each JSON row gains the deterministic telemetry high-water
// fields (queue_high_water, mem_*): feed two such runs to `lw-report diff`
// for a per-case perf comparison.
//
// Each case runs the full simulator (discovery, routing, LITEWORP monitor,
// two colluding attackers) and reports wall-clock throughput next to the
// deterministic work counters (frames transmitted/delivered, simulator
// events executed, queue high-water mark). The deterministic counters are
// recorded in BENCH_baseline.json at the repo root; --check=FILE re-runs
// the cases and fails if any counter drifts from the recorded value — a
// correctness guard for hot-path rewrites, not a wall-clock gate
// (wall-clock fields are informational and machine-dependent).
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/runner.h"
#include "util/config.h"

namespace {

struct Case {
  std::string name;
  std::size_t nodes = 0;
  bool collisions = true;
};

struct CaseResult {
  Case spec;
  int runs = 0;
  // Deterministic per (seed, runs): must match the checked-in baseline.
  std::uint64_t frames_transmitted = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t events_executed = 0;
  std::size_t max_queue_depth = 0;
  // Deterministic telemetry high-water rollup (--series; zero otherwise).
  bool series = false;
  std::size_t queue_high_water = 0;
  lw::obs::MemoryGauges memory_high_water;
  // Wall-clock (machine-dependent, informational).
  double wall_seconds = 0.0;
  lw::obs::ProfileTotals profile;

  double frames_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(frames_transmitted) / wall_seconds
               : 0.0;
  }
  double events_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(events_executed) / wall_seconds
               : 0.0;
  }
};

struct NodesSpec {
  std::size_t nodes = 0;
  bool collisions_case = true;
  bool ideal_case = true;
};

/// Parses the --nodes CSV. A bare count expands to both the _collisions
/// and _ideal case; a `c` suffix ("1000c") keeps only the collisions
/// case and an `i` suffix only the ideal one — the large-N entries pay
/// for one variant, not two.
std::vector<NodesSpec> parse_nodes_list(const std::string& csv) {
  std::vector<NodesSpec> specs;
  std::stringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    NodesSpec spec;
    if (!item.empty() && (item.back() == 'c' || item.back() == 'i')) {
      spec.collisions_case = item.back() == 'c';
      spec.ideal_case = item.back() == 'i';
      item.pop_back();
    }
    spec.nodes = static_cast<std::size_t>(std::stoul(item));
    specs.push_back(spec);
  }
  return specs;
}

CaseResult run_case(const Case& spec, const bench::Common& common,
                    double duration) {
  CaseResult result;
  result.spec = spec;
  result.runs = common.runs;
  result.series = common.series;
  for (int r = 0; r < common.runs; ++r) {
    auto config = lw::scenario::ExperimentConfig::table2_defaults();
    config.node_count = spec.nodes;
    config.duration = duration;
    config.malicious_count = 2;
    config.seed = common.seed + static_cast<std::uint64_t>(r);
    config.phy.collisions_enabled = spec.collisions;
    config.obs.profile = true;  // events_executed / max_pending counters
    config.obs.series = common.series;
    config.obs.series_bucket = common.series_bucket;
    config.obs.watch = common.watch;
    const auto start = std::chrono::steady_clock::now();
    const lw::scenario::RunResult run = lw::scenario::run_experiment(config);
    result.wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.frames_transmitted += run.frames_transmitted;
    result.frames_delivered += run.frames_delivered;
    result.events_executed += run.profile.events_executed;
    result.max_queue_depth =
        std::max(result.max_queue_depth, run.profile.max_queue_depth);
    result.queue_high_water =
        std::max(result.queue_high_water, run.series.queue_high_water);
    result.memory_high_water.max_with(run.series.memory_high_water);
    result.profile.accumulate(run.profile);
  }
  return result;
}

/// Extracts "<key>":<integer> from the baseline object that contains
/// "case":"<name>". Returns -1 when the case or key is missing.
long long baseline_value(const std::string& text, const std::string& name,
                         const std::string& key) {
  const std::string anchor = "\"case\":\"" + name + "\"";
  const std::size_t at = text.find(anchor);
  if (at == std::string::npos) return -1;
  const std::size_t end = text.find('}', at);
  const std::size_t field = text.find("\"" + key + "\":", at);
  if (field == std::string::npos || field > end) return -1;
  return std::atoll(text.c_str() + field + key.size() + 3);
}

/// Compares the deterministic counters of `results` against the recorded
/// baseline; returns the number of drifted fields (0 = pass). A failure
/// prints one expected-vs-actual table per drifted case plus the exact
/// regeneration command, so the fix (or the investigation) needs no
/// spelunking through the baseline file.
int check_against_baseline(const std::string& path,
                           const std::vector<CaseResult>& results,
                           const bench::Common& common, double duration,
                           const std::string& nodes_csv) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // Normalize away whitespace so both compact and pretty-printed baselines
  // parse (keys and case names never contain whitespace).
  std::string text = buffer.str();
  std::erase_if(text, [](unsigned char c) { return std::isspace(c) != 0; });

  int drift = 0;
  for (const CaseResult& r : results) {
    struct Row {
      const char* key;
      long long got;
    };
    const Row rows[] = {
        {"frames_transmitted", static_cast<long long>(r.frames_transmitted)},
        {"frames_delivered", static_cast<long long>(r.frames_delivered)},
        {"events_executed", static_cast<long long>(r.events_executed)},
    };
    bool header_printed = false;
    for (const Row& row : rows) {
      const long long want = baseline_value(text, r.spec.name, row.key);
      if (want == row.got) continue;
      ++drift;
      if (!header_printed) {
        header_printed = true;
        std::fprintf(stderr, "DRIFT in case %s:\n", r.spec.name.c_str());
        std::fprintf(stderr, "  %-20s %14s %14s %10s\n", "counter",
                     "baseline", "run", "delta");
      }
      if (want < 0) {
        std::fprintf(stderr, "  %-20s %14s %14lld %10s\n", row.key,
                     "(missing)", row.got, "-");
      } else {
        std::fprintf(stderr, "  %-20s %14lld %14lld %+10lld\n", row.key, want,
                     row.got, row.got - want);
      }
    }
  }
  if (drift == 0) {
    std::fprintf(stderr, "baseline check passed: %zu cases, no drift\n",
                 results.size());
  } else {
    std::fprintf(
        stderr,
        "%d counter(s) drifted. If the change is intended, regenerate with:\n"
        "  bench_hotpath --json --runs=%d --seed=%llu --duration=%g "
        "--nodes=%s > %s\n",
        drift, common.runs, static_cast<unsigned long long>(common.seed),
        duration, nodes_csv.c_str(), path.c_str());
  }
  return drift;
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 1, 1);
  const double duration = args.get_double("duration", 120.0);
  const std::string nodes_csv = args.get_string("nodes", "50,200,500,1000c");
  const std::string check_file = args.get_string("check", "");
  const bool show_profile = args.get_bool("profile", false);
  if (int status = bench::finish(args)) return status;
  if (common.runs < 1) {
    std::fprintf(stderr, "runs must be positive\n");
    return 1;
  }

  std::vector<Case> cases;
  for (const NodesSpec& spec : parse_nodes_list(nodes_csv)) {
    const std::string stem = "n" + std::to_string(spec.nodes);
    if (spec.collisions_case) {
      cases.push_back({stem + "_collisions", spec.nodes, true});
    }
    if (spec.ideal_case) {
      cases.push_back({stem + "_ideal", spec.nodes, false});
    }
  }

  std::vector<CaseResult> results;
  for (const Case& c : cases) {
    if (!common.quiet) {
      std::fprintf(stderr, "running %s...\n", c.name.c_str());
    }
    results.push_back(run_case(c, common, duration));
    if (show_profile) {
      const CaseResult& r = results.back();
      std::fprintf(stderr, "%s per layer:", c.name.c_str());
      for (std::size_t i = 0; i < lw::obs::kLayerCount; ++i) {
        std::fprintf(stderr, " %s=%.2fs",
                     lw::obs::to_string(static_cast<lw::obs::Layer>(i)),
                     r.profile.layers[i].self_seconds);
      }
      std::fprintf(stderr, "\n");
    }
  }

  if (!check_file.empty()) {
    return check_against_baseline(check_file, results, common, duration,
                                  nodes_csv) == 0
               ? 0
               : 1;
  }

  if (common.json) {
    bench::JsonRows rows;
    for (const CaseResult& r : results) {
      rows.field("case", r.spec.name)
          .field("nodes", static_cast<double>(r.spec.nodes))
          .field("collisions", r.spec.collisions ? 1.0 : 0.0)
          .field("runs", static_cast<double>(r.runs))
          .field("duration", duration)
          .field("seed", static_cast<double>(common.seed))
          .field("frames_transmitted",
                 static_cast<double>(r.frames_transmitted))
          .field("frames_delivered", static_cast<double>(r.frames_delivered))
          .field("events_executed", static_cast<double>(r.events_executed))
          .field("max_queue_depth", static_cast<double>(r.max_queue_depth));
      if (r.series) {
        // Telemetry high-water rollup: deterministic per seed, so two
        // --series runs diff cleanly through lw-report.
        rows.field("queue_high_water",
                   static_cast<double>(r.queue_high_water))
            .field("mem_slab_slots",
                   static_cast<double>(r.memory_high_water.slab_slots))
            .field("mem_watch_entries",
                   static_cast<double>(r.memory_high_water.watch_entries))
            .field("mem_neighbor_bytes",
                   static_cast<double>(r.memory_high_water.neighbor_bytes))
            .field("mem_defense_storage_bytes",
                   static_cast<double>(
                       r.memory_high_water.defense_storage_bytes));
      }
      rows.field("wall_seconds", r.wall_seconds)
          .field("frames_per_second", r.frames_per_second())
          .field("events_per_second", r.events_per_second());
      rows.end_row();
    }
    std::puts(rows.str().c_str());
    return bench::finish(args);
  }

  std::puts("== Hot-path throughput (full stack, LITEWORP + 2 colluders) ==");
  std::printf("%d run(s) per case, %.0f simulated seconds, base seed %llu\n\n",
              common.runs, duration,
              static_cast<unsigned long long>(common.seed));
  std::printf("%-18s %10s %12s %12s %10s %12s %12s\n", "case", "frames",
              "delivered", "events", "queue<=", "wall [s]", "frames/s");
  for (const CaseResult& r : results) {
    std::printf("%-18s %10llu %12llu %12llu %10zu %12.2f %12.0f\n",
                r.spec.name.c_str(),
                static_cast<unsigned long long>(r.frames_transmitted),
                static_cast<unsigned long long>(r.frames_delivered),
                static_cast<unsigned long long>(r.events_executed),
                r.max_queue_depth, r.wall_seconds, r.frames_per_second());
  }
  std::puts("\ncounters (frames, delivered, events) are deterministic per\n"
            "seed; wall-clock columns are machine-dependent. Compare against\n"
            "the checked-in BENCH_baseline.json with --check=FILE.");
  return bench::finish(args);
}
