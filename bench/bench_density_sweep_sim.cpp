// Simulated companion to Figure 6(a): detection probability and false
// alarms measured in the full simulator across network densities, next to
// the closed-form curve evaluated at the MEASURED collision rate.
//
// The paper's Section 6 claims "100% detection of the wormholes for a wide
// range of network densities" — this bench is that claim, swept.
//
//   ./bench_density_sweep_sim [--runs=3] [--seed=800] [--threads=1]
//                             [--json] [--duration=800] [--nodes=60]
//                             [--nb_min=5] [--nb_max=14]
//
// Standard flags (bench_common.h): --runs replicas per density, --seed
// base seed, --threads sweep workers (results identical for any count),
// --json machine-readable sweep dump. The analytic column is evaluated at
// the collision rate measured in the first replica (seed = --seed), which
// replaces the old separate probe run bit-for-bit.
#include <cstdio>
#include <vector>

#include "analysis/coverage.h"
#include "bench_common.h"
#include "scenario/sweep.h"
#include "util/config.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 3, 800);
  const double duration = args.get_double("duration", 800.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 60));
  const int nb_min = args.get_int("nb_min", 5);
  const int nb_max = args.get_int("nb_max", 14);
  if (int status = bench::finish(args)) return status;

  const int default_gamma = lw::scenario::ExperimentConfig::table2_defaults()
                                .defense.liteworp.detection_confidence;

  lw::scenario::SweepSpec spec;
  spec.base = lw::scenario::ExperimentConfig::table2_defaults();
  spec.base.node_count = nodes;
  spec.base.duration = duration;
  spec.base.malicious_count = 2;
  std::vector<int> densities;
  for (int nb = nb_min; nb <= nb_max; nb += 3) {
    densities.push_back(nb);
    spec.points.push_back(
        {"N_B=" + std::to_string(nb),
         [nb, default_gamma](lw::scenario::ExperimentConfig& c) {
           c.target_neighbors = static_cast<double>(nb);
           // gamma must stay below the expected guard count (coverage
           // analysis).
           c.defense.liteworp.detection_confidence =
               nb <= 6 ? 2 : default_gamma;
         },
         0});
  }
  const auto result = bench::run_sweep(common, std::move(spec));

  if (common.json) {
    std::puts(bench::sweep_json(common, result).c_str());
    return bench::finish(args);
  }

  std::puts("== Simulated detection across densities (Fig 6(a) companion, "
            "Sec 6 claim) ==");
  std::printf("%zu nodes, M = 2 out-of-band colluders, %.0f s, %d run(s) "
              "per density, %d thread(s), %.1f s wall\n\n",
              nodes, duration, common.runs, result.threads_used,
              result.wall_seconds);
  std::printf("%-6s %-10s %-16s %-16s %-10s %s\n", "N_B", "measured",
              "sim P(detect)", "ana P(detect)", "false", "mean isolation");
  std::printf("%-6s %-10s %-16s %-16s %-10s %s\n", "", "collide",
              "(+/- sem)", "@measured P_C", "isolations", "latency [s]");

  for (std::size_t p = 0; p < densities.size(); ++p) {
    const int nb = densities[p];
    const auto& point = result.points[p];
    const auto& agg = point.aggregate;

    // Evaluate the analytic curve at the first replica's true collision
    // probability.
    const auto& probe = point.replicas.front();
    const double pc =
        static_cast<double>(probe.frames_collided) /
        static_cast<double>(probe.frames_collided + probe.frames_delivered);

    lw::analysis::CoverageParams ana;
    ana.detection_confidence = nb <= 6 ? 2 : default_gamma;
    ana.pc_reference = pc;
    ana.pc_reference_neighbors = static_cast<double>(nb);
    const double analytic = lw::analysis::detection_probability(
        ana, static_cast<double>(nb));

    std::printf("%-6d %-10.3f %.3f +/- %-6.3f %-16.3f %-10.1f ", nb, pc,
                agg.detection_probability, agg.detection_probability_sem,
                analytic, agg.false_isolations);
    if (agg.mean_isolation_latency) {
      std::printf("%.1f\n", *agg.mean_isolation_latency);
    } else {
      std::printf("--\n");
    }
  }

  std::puts("\nexpected shape: simulated detection ~1.0 across the evaluated\n"
            "densities (the Section 6 claim), consistent with the analytic\n"
            "probability at the measured collision rate; zero false\n"
            "isolations throughout.");
  return bench::finish(args);
}
