// Simulated companion to Figure 6(a): detection probability and false
// alarms measured in the full simulator across network densities, next to
// the closed-form curve evaluated at the MEASURED collision rate.
//
// The paper's Section 6 claims "100% detection of the wormholes for a wide
// range of network densities" — this bench is that claim, swept.
//
//   ./bench_density_sweep_sim [--runs=3] [--duration=500] [--nodes=60]
//                             [--nb_min=5] [--nb_max=14] [--seed=800]
#include <cstdio>

#include "analysis/coverage.h"
#include "scenario/runner.h"
#include "util/config.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const int runs = args.get_int("runs", 3);
  const double duration = args.get_double("duration", 800.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 60));
  const int nb_min = args.get_int("nb_min", 5);
  const int nb_max = args.get_int("nb_max", 14);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 800));

  std::puts("== Simulated detection across densities (Fig 6(a) companion, "
            "Sec 6 claim) ==");
  std::printf("%zu nodes, M = 2 out-of-band colluders, %.0f s, %d run(s) "
              "per density\n\n",
              nodes, duration, runs);
  std::printf("%-6s %-10s %-16s %-16s %-10s %s\n", "N_B", "measured",
              "sim P(detect)", "ana P(detect)", "false", "mean isolation");
  std::printf("%-6s %-10s %-16s %-16s %-10s %s\n", "", "collide",
              "(+/- sem)", "@measured P_C", "isolations", "latency [s]");

  for (int nb = nb_min; nb <= nb_max; nb += 3) {
    auto config = lw::scenario::ExperimentConfig::table2_defaults();
    config.node_count = nodes;
    config.target_neighbors = static_cast<double>(nb);
    config.duration = duration;
    config.malicious_count = 2;
    // gamma must stay below the expected guard count (coverage analysis).
    config.liteworp.detection_confidence =
        nb <= 6 ? 2 : lw::scenario::ExperimentConfig::table2_defaults()
                          .liteworp.detection_confidence;
    config.finalize();

    // Measure the channel once to evaluate the analytic curve at the
    // simulator's true collision probability.
    config.seed = seed;
    auto probe = lw::scenario::run_experiment(config);
    const double pc =
        static_cast<double>(probe.frames_collided) /
        static_cast<double>(probe.frames_collided + probe.frames_delivered);

    auto agg = lw::scenario::average_runs(config, runs, seed);

    lw::analysis::CoverageParams ana;
    ana.detection_confidence = config.liteworp.detection_confidence;
    // Evaluate at the measured collision probability directly.
    ana.pc_reference = pc;
    ana.pc_reference_neighbors = static_cast<double>(nb);
    const double analytic = lw::analysis::detection_probability(
        ana, static_cast<double>(nb));

    std::printf("%-6d %-10.3f %.3f +/- %-6.3f %-16.3f %-10.1f ", nb, pc,
                agg.detection_probability, agg.detection_probability_sem,
                analytic, agg.false_isolations);
    if (agg.mean_isolation_latency) {
      std::printf("%.1f\n", *agg.mean_isolation_latency);
    } else {
      std::printf("--\n");
    }
  }

  std::puts("\nexpected shape: simulated detection ~1.0 across the evaluated\n"
            "densities (the Section 6 claim), consistent with the analytic\n"
            "probability at the measured collision rate; zero false\n"
            "isolations throughout.");
  return 0;
}
