// Shared bench CLI surface — the unified experiment/bench API.
//
// Every bench accepts the standard flags
//   --runs=N     seed replicas per sweep point (default varies per bench)
//   --seed=S     base seed; replica i runs seed S+i
//   --threads=T  sweep worker threads (0 = one per hardware thread,
//                default 1); results are bit-identical for any T
//   --json       machine-readable output instead of the text tables
// plus its own flags, all parsed through lw::Config. Mistyped flags make
// the bench exit non-zero with a message BEFORE any simulation runs
// (finish(), called once right after flag parsing and once at exit).
// Benches with no stochastic runs (the closed-form analysis harnesses)
// accept --runs and --threads for CLI uniformity but ignore them.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

#include "scenario/sweep.h"
#include "util/config.h"

namespace bench {

struct Common {
  int runs = 1;
  std::uint64_t seed = 1;
  int threads = 1;
  bool json = false;
};

inline Common parse_common(const lw::Config& args, int default_runs,
                           std::uint64_t default_seed) {
  Common common;
  common.runs = args.get_int("runs", default_runs);
  common.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<int>(default_seed)));
  common.threads = args.get_int("threads", 1);
  common.json = args.get_bool("json", false);
  return common;
}

/// Applies the common knobs to a sweep spec.
inline void apply(const Common& common, lw::scenario::SweepSpec& spec) {
  spec.runs = common.runs;
  spec.base_seed = common.seed;
  spec.threads = common.threads;
}

/// Rejects mistyped flags; returns the process exit code. Call it right
/// after the last flag read (so a typo aborts before the sweep runs, not
/// after) and again as the bench's return value.
inline int finish(const lw::Config& args) {
  int status = 0;
  for (const std::string& key : args.unread_keys()) {
    std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
    status = 1;
  }
  return status;
}

/// Tiny JSON table writer for benches whose output is a flat table rather
/// than a sweep (the analytic harnesses): an array of uniform objects.
/// Sweep benches use lw::scenario::to_json instead.
class JsonRows {
 public:
  JsonRows& field(const std::string& key, double value) {
    open_field(key);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    out_ << buffer;
    return *this;
  }
  JsonRows& field(const std::string& key, const std::string& value) {
    open_field(key);
    out_ << '"';
    for (char c : value) {
      if (c == '"' || c == '\\') out_ << '\\';
      out_ << c;
    }
    out_ << '"';
    return *this;
  }
  void end_row() {
    out_ << '}';
    in_row_ = false;
  }
  std::string str() const { return "[" + out_.str() + "]"; }

 private:
  void open_field(const std::string& key) {
    if (!in_row_) {
      out_ << (first_row_ ? "{" : ",{");
      first_row_ = false;
      in_row_ = true;
    } else {
      out_ << ',';
    }
    out_ << '"' << key << "\":";
  }

  std::ostringstream out_;
  bool first_row_ = true;
  bool in_row_ = false;
};

}  // namespace bench
