// Shared bench CLI surface — the unified experiment/bench API.
//
// Every bench accepts the standard flags
//   --runs=N     seed replicas per sweep point (default varies per bench)
//   --seed=S     base seed; replica i runs seed S+i
//   --threads=T  sweep worker threads (0 = one per hardware thread,
//                default 1); results are bit-identical for any T
//   --json       machine-readable output instead of the text tables
//   --trace=F    write a JSONL event trace of every run to file F
//                (buffered per run in memory, written in spec order at the
//                end)
//   --trace-out=F  same trace, streamed to F during the sweep instead of
//                buffered in RunResult::trace_jsonl — constant memory for
//                long runs; byte-identical to --trace at any --threads.
//                Mutually exclusive with --trace.
//   --trace-filter=L  comma-separated layers to trace (phy,mac,nbr,route,
//                mon,atk; default all)
//   --profile    collect run profiles; adds per-point profiler totals and
//                a "timing" section to the sweep JSON, and a summary on
//                stderr
//   --series[=B] sample a deterministic sim-time telemetry series (bucket
//                width B simulated seconds, default 1.0): per-bucket layer
//                event rates, queue depth/high-water, memory gauges. Adds
//                a "series" object to every replica in the sweep JSON;
//                byte-identical per seed at any --threads value. Wall-clock
//                self-time per bucket appears only with --profile.
//   --spans      fold events into protocol-transaction spans (route
//                sessions, alibi windows, alert rounds, tunnel sessions,
//                join handshakes): adds a "spans" object to every replica
//                in the sweep JSON and, when combined with --trace /
//                --trace-out, span.begin/span.end lines to the trace.
//                Byte-identical per seed at any --threads value.
//   --watch      live progress view on stderr while each run executes
//                (sim-time, event rate, queue depth, ETA). Display only —
//                never changes results. Most useful with --threads=1;
//                concurrent runs interleave their lines.
//   --run-timeout=S  per-replica wall-clock watchdog: a run still executing
//                after S real seconds is aborted and reported as a failed
//                replica instead of hanging the worker pool (0 = off)
//   --defense=NAME   defense backend for the sweep's base config
//                (liteworp, leash, zscore, none); default leaves the
//                bench's own choice in place
//   --defense-opt=K=V[,K=V...]  backend parameters by dotted key, e.g.
//                --defense-opt=zscore.z_threshold=3,zscore.min_peers=4
//                (comma-separated because lw::Config keeps one value per
//                flag)
//   --quiet      suppress the stderr progress line (on by default when
//                stderr is a TTY)
//
// Sweep benches also install SIGINT/SIGTERM handlers: the first signal
// cancels the sweep cooperatively (jobs not yet started are skipped,
// in-flight runs finish and drain, --json / --trace-out output stays
// complete and parseable, with an "interrupted" marker in the JSON); a
// second signal falls through to the default handler and kills the
// process.
// plus its own flags, all parsed through lw::Config. Mistyped flags make
// the bench exit non-zero with a message BEFORE any simulation runs
// (finish(), called once right after flag parsing and once at exit).
// Benches with no stochastic runs (the closed-form analysis harnesses)
// accept --runs and --threads for CLI uniformity but ignore them.
#pragma once

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "defense/defense.h"
#include "obs/event.h"
#include "scenario/sweep.h"
#include "util/config.h"

namespace bench {

struct Common {
  int runs = 1;
  std::uint64_t seed = 1;
  int threads = 1;
  bool json = false;
  /// JSONL trace output file (buffered per run); empty = off.
  std::string trace_file;
  /// JSONL trace output file (streamed during the sweep); empty = off.
  std::string trace_out_file;
  std::uint32_t trace_layers = lw::obs::kAllLayers;
  bool profile = false;
  /// Telemetry series sampling (--series[=bucket_seconds]).
  bool series = false;
  double series_bucket = 1.0;
  /// Protocol-transaction span folding (--spans).
  bool spans = false;
  /// Live stderr progress view per run (--watch).
  bool watch = false;
  bool quiet = false;
  /// Per-replica wall-clock watchdog in seconds; 0 disables.
  double run_timeout = 0.0;
  /// Defense backend override (--defense); empty = keep the bench default.
  std::string defense;
  /// Comma-separated dotted k=v backend parameters (--defense-opt).
  std::string defense_opts;
};

inline Common parse_common(const lw::Config& args, int default_runs,
                           std::uint64_t default_seed) {
  Common common;
  common.runs = args.get_int("runs", default_runs);
  common.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<int>(default_seed)));
  common.threads = args.get_int("threads", 1);
  common.json = args.get_bool("json", false);
  common.trace_file = args.get_string("trace", "");
  common.trace_out_file = args.get_string("trace-out", "");
  if (!common.trace_file.empty() && !common.trace_out_file.empty()) {
    std::fprintf(stderr, "--trace and --trace-out are mutually exclusive\n");
    std::exit(1);
  }
  common.profile = args.get_bool("profile", false);
  // --series is a flag ("true") or carries the bucket width (--series=2.5).
  const std::string series = args.get_string("series", "");
  if (!series.empty()) {
    common.series = true;
    if (series != "true") {
      char* end = nullptr;
      common.series_bucket = std::strtod(series.c_str(), &end);
      if (end == series.c_str() || *end != '\0' ||
          common.series_bucket <= 0.0) {
        std::fprintf(stderr,
                     "--series: bucket width must be a positive number of "
                     "simulated seconds, got \"%s\"\n",
                     series.c_str());
        std::exit(1);
      }
    }
  }
  common.spans = args.get_bool("spans", false);
  common.watch = args.get_bool("watch", false);
  common.quiet = args.get_bool("quiet", false);
  common.run_timeout = args.get_double("run-timeout", 0.0);
  common.defense = args.get_string("defense", "");
  common.defense_opts = args.get_string("defense-opt", "");
  if (!common.defense.empty() && !lw::defense::known(common.defense)) {
    std::string names;
    for (const std::string& name : lw::defense::registry()) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    std::fprintf(stderr, "--defense: unknown backend \"%s\" (registered: %s)\n",
                 common.defense.c_str(), names.c_str());
    std::exit(1);
  }
  const std::string filter = args.get_string("trace-filter", "all");
  try {
    common.trace_layers = lw::obs::parse_layer_mask(filter);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--trace-filter: %s\n", e.what());
    std::exit(1);
  }
  return common;
}

/// Applies --defense / --defense-opt to one config (validation errors make
/// the bench exit non-zero with the backend's message before any run).
inline void apply_defense(const Common& common,
                          lw::scenario::ExperimentConfig& config) {
  if (!common.defense.empty()) config.defense.name = common.defense;
  std::string opts = common.defense_opts;
  while (!opts.empty()) {
    const std::size_t comma = opts.find(',');
    const std::string pair = opts.substr(0, comma);
    opts = comma == std::string::npos ? "" : opts.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "--defense-opt: expected key=value, got \"%s\"\n",
                   pair.c_str());
      std::exit(1);
    }
    try {
      lw::defense::set_option(config.defense, pair.substr(0, eq),
                              pair.substr(eq + 1));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--defense-opt: %s\n", e.what());
      std::exit(1);
    }
  }
}

/// Applies the common knobs to a sweep spec (including the observability
/// switches: tracing when --trace/--trace-out was given, counters and
/// profiling under --trace/--profile, forensic incident folding whenever a
/// trace is requested — or when the bench itself enabled it).
inline void apply(const Common& common, lw::scenario::SweepSpec& spec) {
  const bool tracing =
      !common.trace_file.empty() || !common.trace_out_file.empty();
  spec.runs = common.runs;
  spec.base_seed = common.seed;
  spec.threads = common.threads;
  spec.base.obs.trace = tracing;
  spec.base.obs.trace_layers = common.trace_layers;
  spec.base.obs.profile = common.profile;
  spec.base.obs.counters = common.profile || tracing;
  spec.base.obs.series = common.series;
  spec.base.obs.series_bucket = common.series_bucket;
  spec.base.obs.spans = common.spans || spec.base.obs.spans;
  spec.base.obs.watch = common.watch;
  spec.base.obs.forensics = tracing || spec.base.obs.forensics;
  spec.run_timeout_seconds = common.run_timeout;
  apply_defense(common, spec.base);
}

namespace detail {

/// Cooperative-cancellation flag shared with the sweep engine; set by the
/// first SIGINT/SIGTERM.
inline volatile std::sig_atomic_t g_cancel = 0;

extern "C" inline void handle_cancel_signal(int signum) {
  g_cancel = 1;
  // One chance to finish cleanly; a second signal kills the process.
  std::signal(signum, SIG_DFL);
}

/// Installs the handlers once per process (safe to call repeatedly).
inline void install_cancel_handlers() {
  static const bool installed = [] {
    std::signal(SIGINT, handle_cancel_signal);
    std::signal(SIGTERM, handle_cancel_signal);
    return true;
  }();
  (void)installed;
}

/// Stderr progress line with ETA; enabled by default on a TTY, suppressed
/// by --quiet. Returns an empty function when disabled.
inline std::function<void(std::size_t, std::size_t)> make_progress(
    const Common& common) {
  if (common.quiet || isatty(fileno(stderr)) == 0) return {};
  const auto start = std::chrono::steady_clock::now();
  return [start](std::size_t done, std::size_t total) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double eta =
        done > 0 ? elapsed * static_cast<double>(total - done) /
                       static_cast<double>(done)
                 : 0.0;
    std::fprintf(stderr, "\r\033[K%zu/%zu jobs (%.0f s elapsed, ETA %.0f s)",
                 done, total, elapsed, eta);
    if (done == total) std::fprintf(stderr, "\r\033[K");
    std::fflush(stderr);
  };
}

/// JSON string escaping for the trace run-header lines.
inline std::string json_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Writes every run's buffered trace in spec order, each introduced by a
/// meta line identifying the point and seed. Spec-order writing is what
/// keeps the file byte-identical at any --threads value.
inline void write_trace(const Common& common,
                        const lw::scenario::SweepResult& result) {
  std::ofstream out(common.trace_file);
  if (!out) {
    std::fprintf(stderr, "cannot write trace file %s\n",
                 common.trace_file.c_str());
    std::exit(1);
  }
  for (const auto& point : result.points) {
    for (const auto& replica : point.replicas) {
      // Failed replicas (cancelled / timed out) produced no trace; writing
      // their headers would fake empty runs.
      if (replica.failed) continue;
      out << "{\"run\":{\"point\":\"" << json_escape(point.label)
          << "\",\"seed\":" << replica.seed << "}}\n";
      out << replica.trace_jsonl;
    }
  }
}

inline void print_profile(const lw::scenario::SweepResult& result) {
  std::fprintf(stderr, "== profile (%d thread(s), %.2f s wall) ==\n",
               result.threads_used, result.wall_seconds);
  for (const auto& point : result.points) {
    const auto& prof = point.profile;
    if (!prof.enabled) continue;
    std::fprintf(stderr,
                 "%-16s %10llu events  %8.2f s cpu  %6.0f ev/ms  "
                 "queue<=%zu\n",
                 point.label.empty() ? "(point)" : point.label.c_str(),
                 static_cast<unsigned long long>(prof.events_executed),
                 prof.wall_seconds,
                 prof.wall_seconds > 0.0
                     ? static_cast<double>(prof.events_executed) /
                           (prof.wall_seconds * 1e3)
                     : 0.0,
                 prof.max_queue_depth);
    std::fprintf(stderr, "    per layer:");
    for (std::size_t i = 0; i < lw::obs::kLayerCount; ++i) {
      std::fprintf(
          stderr, " %s=%llu/%.2fs",
          lw::obs::to_string(static_cast<lw::obs::Layer>(i)),
          static_cast<unsigned long long>(prof.layers[i].events),
          prof.layers[i].self_seconds);
    }
    std::fprintf(stderr, "\n");
  }
}

}  // namespace detail

/// Runs the sweep with the common knobs applied: progress line on a TTY,
/// trace file written in spec order afterwards, profile summary on stderr.
/// Sweep benches call this instead of lw::scenario::run_sweep directly.
inline lw::scenario::SweepResult run_sweep(const Common& common,
                                           lw::scenario::SweepSpec spec) {
  apply(common, spec);
  spec.progress = detail::make_progress(common);
  detail::install_cancel_handlers();
  spec.cancel = &detail::g_cancel;
  std::ofstream stream_out;
  if (!common.trace_out_file.empty()) {
    stream_out.open(common.trace_out_file);
    if (!stream_out) {
      std::fprintf(stderr, "cannot write trace file %s\n",
                   common.trace_out_file.c_str());
      std::exit(1);
    }
    // Stream each replica's trace as soon as it is next in spec order (the
    // drain hook serializes under the engine lock), then drop the buffer:
    // the file matches --trace byte for byte without holding every run's
    // trace in memory until the sweep ends.
    spec.drain = [&stream_out, &spec](std::size_t p, std::size_t /*i*/,
                                      lw::scenario::RunResult& r) {
      stream_out << "{\"run\":{\"point\":\""
                 << detail::json_escape(spec.points[p].label)
                 << "\",\"seed\":" << r.seed << "}}\n";
      stream_out << r.trace_jsonl;
      r.trace_jsonl.clear();
      r.trace_jsonl.shrink_to_fit();
    };
  }
  lw::scenario::SweepResult result = lw::scenario::run_sweep(spec);
  if (!common.trace_file.empty()) detail::write_trace(common, result);
  if (common.profile) detail::print_profile(result);
  if (result.interrupted) {
    std::fprintf(stderr,
                 "sweep interrupted: %zu job(s) skipped; completed points "
                 "flushed\n",
                 result.jobs_skipped);
  }
  return result;
}

/// The sweep JSON with timing included exactly when profiling was
/// requested (keeping the default byte-identical across --threads).
inline std::string sweep_json(const Common& common,
                              const lw::scenario::SweepResult& result) {
  return lw::scenario::to_json(result, common.profile);
}

/// Rejects mistyped flags; returns the process exit code. Call it right
/// after the last flag read (so a typo aborts before the sweep runs, not
/// after) and again as the bench's return value.
inline int finish(const lw::Config& args) {
  int status = 0;
  for (const std::string& key : args.unread_keys()) {
    std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
    status = 1;
  }
  return status;
}

/// Tiny JSON table writer for benches whose output is a flat table rather
/// than a sweep (the analytic harnesses): an array of uniform objects.
/// Sweep benches use lw::scenario::to_json instead.
class JsonRows {
 public:
  JsonRows& field(const std::string& key, double value) {
    open_field(key);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    out_ << buffer;
    return *this;
  }
  /// Injects pre-rendered JSON (e.g. a telemetry series object) as the
  /// field's value, verbatim.
  JsonRows& raw_field(const std::string& key, const std::string& json) {
    open_field(key);
    out_ << json;
    return *this;
  }
  JsonRows& field(const std::string& key, const std::string& value) {
    open_field(key);
    out_ << '"';
    for (char c : value) {
      if (c == '"' || c == '\\') out_ << '\\';
      out_ << c;
    }
    out_ << '"';
    return *this;
  }
  void end_row() {
    out_ << '}';
    in_row_ = false;
  }
  std::string str() const { return "[" + out_.str() + "]"; }

 private:
  void open_field(const std::string& key) {
    if (!in_row_) {
      out_ << (first_row_ ? "{" : ",{");
      first_row_ = false;
      in_row_ = true;
    } else {
      out_ << ',';
    }
    out_ << '"' << key << "\":";
  }

  std::ostringstream out_;
  bool first_row_ = true;
  bool in_row_ = false;
};

}  // namespace bench
