// Head-to-head ROC benchmark of the defense zoo: every backend swept over
// its own sensitivity ladder, against multiple wormhole modes, on common
// random numbers — precision from the forensic incident labels, recall
// from ground-truth isolations, uniform overhead counters alongside.
//
// Each point is one (attack mode, backend, threshold) cell:
//   liteworp  sweeps malc_threshold C_t (corroborated bar scaled with it)
//   zscore    sweeps z_threshold
//   leash     sweeps sync_error (temporal leash budget)
//   none      a single undefended reference point
//
// Precision counts labeled incidents (forensics: an accused node with at
// least one local detection or isolation, labeled against atk.* ground
// truth); recall is the fraction of truly malicious nodes fully isolated.
// Backends without an accusation channel (leash, none) trivially score
// recall 0 — their row is the prevention column (wormhole routes).
//
//   ./bench_defense_roc [--runs=2] [--seed=950] [--threads=1] [--json]
//                       [--nodes=60] [--duration=400] [--check]
//
// Standard flags (bench_common.h) apply. --check validates the zoo-wide
// invariants (CI perf-smoke): every replica completes, rates stay in
// [0, 1], the undefended baseline never isolates anyone, calibrated
// LITEWORP reaches perfect precision and recall, the Z-score detector
// convicts tunnel endpoints without framing honest nodes at its default
// threshold, and the span-derived detection-latency decomposition
// telescopes against the forensic incident latencies. Output is
// bit-identical at any --threads.
//
// Detection latency decomposition: spans are always on for this bench
// (spec.base.obs.spans), so every cell also reports the alert-round phase
// split pooled over its replicas' raw samples —
//   observe      first suspicion - accused's first malicious act
//   corroborate  first local detection - first suspicion
//   isolate      first isolation - first local detection
// which telescope to the forensic detection latency per round.
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "attack/modes.h"
#include "bench_common.h"
#include "defense/defense.h"
#include "obs/span.h"
#include "scenario/sweep.h"
#include "util/config.h"

namespace {

struct Cell {
  std::string defense;
  /// Swept parameter's dotted name ("-" for the undefended point).
  std::string param;
  double value = 0.0;
  std::function<void(lw::scenario::ExperimentConfig&)> tune;
};

std::vector<Cell> ladder() {
  std::vector<Cell> cells;
  cells.push_back({"none", "-", 0.0, [](lw::scenario::ExperimentConfig& c) {
                     c.defense.name = "none";
                   }});
  for (double sync : {0.0, 1e-6, 1e-5}) {
    cells.push_back({"leash", "leash.sync_error", sync,
                     [sync](lw::scenario::ExperimentConfig& c) {
                       c.defense.name = "leash";
                       c.defense.leash.sync_error = sync;
                     }});
  }
  for (double z : {1.5, 2.5, 3.5}) {
    cells.push_back({"zscore", "zscore.z_threshold", z,
                     [z](lw::scenario::ExperimentConfig& c) {
                       c.defense.name = "zscore";
                       c.defense.zscore.z_threshold = z;
                     }});
  }
  for (int ct : {12, 24, 36}) {
    cells.push_back({"liteworp", "liteworp.malc_threshold",
                     static_cast<double>(ct),
                     [ct](lw::scenario::ExperimentConfig& c) {
                       c.defense.name = "liteworp";
                       c.defense.liteworp.malc_threshold = ct;
                       // Keep the hearsay bar at its calibrated ratio.
                       c.defense.liteworp.corroborated_threshold = ct / 2;
                     }});
  }
  return cells;
}

/// One cell's reduced outputs, summed over its seed replicas.
struct RocRow {
  std::string mode;
  const Cell* cell = nullptr;
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  double recall = 0.0;  // isolated malicious / malicious, replica-averaged
  double wormhole_routes = 0.0;
  double false_isolations = 0.0;
  lw::defense::CostSnapshot cost;  // replica-summed
  bool any_failed = false;
  /// Raw span samples pooled across replicas (exactly re-summarizable).
  std::vector<double> observe;
  std::vector<double> corroborate;
  std::vector<double> isolate;
  std::vector<double> latency;
  /// Forensic latency population for the telescoping cross-check.
  std::uint64_t forensic_latency_samples = 0;
  double forensic_latency_sum = 0.0;

  double precision() const {
    const std::uint64_t total = true_positives + false_positives;
    return total == 0 ? 1.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(total);
  }
};

RocRow reduce(const std::string& mode, const Cell& cell,
              const lw::scenario::SweepPointResult& point) {
  RocRow row;
  row.mode = mode;
  row.cell = &cell;
  double recall_sum = 0.0;
  for (const auto& r : point.replicas) {
    if (r.failed) {
      row.any_failed = true;
      continue;
    }
    row.true_positives += r.forensics.true_positives;
    row.false_positives += r.forensics.false_positives;
    recall_sum += r.malicious_count
                      ? static_cast<double>(r.malicious_isolated) /
                            static_cast<double>(r.malicious_count)
                      : 1.0;
    row.cost.accumulate(r.defense_cost);
    const auto& spans = r.spans;
    row.observe.insert(row.observe.end(), spans.observe.samples.begin(),
                       spans.observe.samples.end());
    row.corroborate.insert(row.corroborate.end(),
                           spans.corroborate.samples.begin(),
                           spans.corroborate.samples.end());
    row.isolate.insert(row.isolate.end(), spans.isolate.samples.begin(),
                       spans.isolate.samples.end());
    row.latency.insert(row.latency.end(), spans.detection_latencies.begin(),
                       spans.detection_latencies.end());
    row.forensic_latency_samples += r.forensics.latency_samples;
    row.forensic_latency_sum += r.forensics.mean_detection_latency *
                                static_cast<double>(r.forensics.latency_samples);
  }
  const auto n = static_cast<double>(point.replicas.size());
  row.recall = recall_sum / n;
  row.wormhole_routes = point.aggregate.wormhole_routes;
  row.false_isolations = point.aggregate.false_isolations;
  return row;
}

double sum_of(const std::vector<double>& samples) {
  double total = 0.0;
  for (const double s : samples) total += s;
  return total;
}

int check_rows(const std::vector<RocRow>& rows) {
  int failures = 0;
  const auto fail = [&failures](const RocRow& row, const char* what) {
    std::fprintf(stderr, "CHECK FAILED [%s / %s %s=%g]: %s\n",
                 row.mode.c_str(), row.cell->defense.c_str(),
                 row.cell->param.c_str(), row.cell->value, what);
    ++failures;
  };
  for (const RocRow& row : rows) {
    // Span-phase bookkeeping: the three phases are recorded together, the
    // span latency population must be exactly the forensic one, and when
    // every latency round has a complete phase timeline the decomposition
    // telescopes: observe + corroborate + isolate == detection latency.
    if (row.observe.size() != row.corroborate.size() ||
        row.observe.size() != row.isolate.size()) {
      fail(row, "span phase sample counts diverge");
    }
    if (row.latency.size() != row.forensic_latency_samples) {
      fail(row, "span detection-latency population != forensic population");
    }
    if (std::abs(sum_of(row.latency) - row.forensic_latency_sum) > 1e-6) {
      fail(row, "span detection-latency sum != forensic latency sum");
    }
    if (row.observe.size() == row.latency.size() &&
        std::abs(sum_of(row.observe) + sum_of(row.corroborate) +
                 sum_of(row.isolate) - sum_of(row.latency)) > 1e-6) {
      fail(row, "phase decomposition does not telescope to the latency");
    }
    if (row.any_failed) fail(row, "replica failed to complete");
    if (row.precision() < 0.0 || row.precision() > 1.0 ||
        row.recall < 0.0 || row.recall > 1.0) {
      fail(row, "precision/recall out of [0, 1]");
    }
    if (row.cell->defense == "none") {
      if (row.recall != 0.0) fail(row, "undefended baseline isolated a node");
      if (row.cost.control_messages != 0)
        fail(row, "undefended baseline sent control traffic");
    }
    if (row.cell->defense == "liteworp" && row.cell->value == 24.0) {
      if (row.recall != 1.0)
        fail(row, "calibrated LITEWORP must isolate every colluder");
      if (row.false_positives != 0)
        fail(row, "calibrated LITEWORP must not accuse honest nodes");
    }
    if (row.cell->defense == "zscore" && row.cell->value == 2.5) {
      if (row.true_positives == 0)
        fail(row, "default-threshold zscore must convict tunnel endpoints");
      if (row.false_isolations != 0.0)
        fail(row, "default-threshold zscore must not isolate honest nodes");
    }
    if (row.cell->defense != "none" && row.cost.frames_observed == 0 &&
        row.cell->defense != "leash") {
      fail(row, "active detector observed no frames");
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 2, 950);
  const double duration = args.get_double("duration", 400.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 60));
  const bool check = args.get_bool("check", false);
  if (int status = bench::finish(args)) return status;

  const std::vector<Cell> cells = ladder();
  const struct {
    const char* label;
    lw::attack::WormholeMode mode;
  } modes[] = {
      {"encapsulation", lw::attack::WormholeMode::kEncapsulation},
      {"out_of_band", lw::attack::WormholeMode::kOutOfBand},
  };

  lw::scenario::SweepSpec spec;
  spec.base = lw::scenario::ExperimentConfig::table2_defaults();
  spec.base.node_count = nodes;
  spec.base.duration = duration;
  spec.base.malicious_count = 2;
  // Precision needs the labeled incident stream even when no trace file
  // was requested; the latency decomposition needs the span folding.
  spec.base.obs.forensics = true;
  spec.base.obs.spans = true;
  for (const auto& m : modes) {
    for (const Cell& cell : cells) {
      const auto mode = m.mode;
      const auto tune = cell.tune;
      spec.points.push_back(
          {std::string(m.label) + " / " + cell.defense + " " + cell.param +
               "=" + std::to_string(cell.value),
           [mode, tune](lw::scenario::ExperimentConfig& c) {
             c.attack.mode = mode;
             tune(c);
           },
           0});
    }
  }
  const auto result = bench::run_sweep(common, std::move(spec));

  std::vector<RocRow> rows;
  std::size_t p = 0;
  for (const auto& m : modes) {
    for (const Cell& cell : cells) {
      rows.push_back(reduce(m.label, cell, result.points[p++]));
    }
  }

  if (check) {
    const int failures = check_rows(rows);
    if (failures) {
      std::fprintf(stderr, "bench_defense_roc --check: %d failure(s)\n",
                   failures);
      return 1;
    }
    std::puts("bench_defense_roc --check: all invariants hold");
    return bench::finish(args);
  }

  if (common.json) {
    bench::JsonRows out;
    for (const RocRow& row : rows) {
      out.field("mode", row.mode)
          .field("defense", row.cell->defense)
          .field("param", row.cell->param)
          .field("value", row.cell->value)
          .field("true_positives", static_cast<double>(row.true_positives))
          .field("false_positives", static_cast<double>(row.false_positives))
          .field("precision", row.precision())
          .field("recall", row.recall)
          .field("wormhole_routes", row.wormhole_routes)
          .field("false_isolations", row.false_isolations)
          .field("frames_observed",
                 static_cast<double>(row.cost.frames_observed))
          .field("admission_checks",
                 static_cast<double>(row.cost.admission_checks))
          .field("admission_rejects",
                 static_cast<double>(row.cost.admission_rejects))
          .field("control_messages",
                 static_cast<double>(row.cost.control_messages))
          .field("control_bytes", static_cast<double>(row.cost.control_bytes))
          .field("storage_bytes", static_cast<double>(row.cost.storage_bytes));
      const auto latency = lw::obs::summarize_samples(row.latency);
      const auto observe = lw::obs::summarize_samples(row.observe);
      const auto corroborate = lw::obs::summarize_samples(row.corroborate);
      const auto isolate = lw::obs::summarize_samples(row.isolate);
      out.field("detection_rounds", static_cast<double>(latency.count))
          .field("latency_mean", latency.mean)
          .field("latency_p50", latency.p50)
          .field("latency_p95", latency.p95)
          .field("observe_mean", observe.mean)
          .field("observe_p50", observe.p50)
          .field("observe_p95", observe.p95)
          .field("corroborate_mean", corroborate.mean)
          .field("corroborate_p50", corroborate.p50)
          .field("corroborate_p95", corroborate.p95)
          .field("isolate_mean", isolate.mean)
          .field("isolate_p50", isolate.p50)
          .field("isolate_p95", isolate.p95);
      out.end_row();
    }
    std::puts(out.str().c_str());
    return bench::finish(args);
  }

  std::puts("== Defense zoo ROC: precision/recall/overhead per backend ==");
  std::printf("%zu nodes, %.0f s, M = 2 colluders, %d run(s) per cell, "
              "%d thread(s), %.1f s wall\n\n",
              nodes, duration, common.runs, result.threads_used,
              result.wall_seconds);
  std::printf("%-14s %-9s %-26s %-5s %-5s %-6s %-7s %-7s %-9s %-9s %s\n",
              "mode", "defense", "threshold", "tp", "fp", "prec", "recall",
              "whroute", "alerts", "alert_B", "storage_B");
  for (const RocRow& row : rows) {
    char threshold[32];
    std::snprintf(threshold, sizeof(threshold), "%s=%g",
                  row.cell->param.c_str(), row.cell->value);
    std::printf("%-14s %-9s %-26s %-5llu %-5llu %-6.2f %-7.2f %-7.1f "
                "%-9llu %-9llu %llu\n",
                row.mode.c_str(), row.cell->defense.c_str(), threshold,
                static_cast<unsigned long long>(row.true_positives),
                static_cast<unsigned long long>(row.false_positives),
                row.precision(), row.recall, row.wormhole_routes,
                static_cast<unsigned long long>(row.cost.control_messages),
                static_cast<unsigned long long>(row.cost.control_bytes),
                static_cast<unsigned long long>(row.cost.storage_bytes));
  }
  std::puts("\n== Detection latency decomposition (sim s, pooled over "
            "replicas) ==");
  std::printf("%-14s %-9s %-26s %-7s %-8s %-8s %-24s %-24s %s\n", "mode",
              "defense", "threshold", "rounds", "lat_p50", "lat_p95",
              "observe(mean/p50/p95)", "corrob(mean/p50/p95)",
              "isolate(mean/p50/p95)");
  for (const RocRow& row : rows) {
    if (row.latency.empty()) continue;
    const auto latency = lw::obs::summarize_samples(row.latency);
    const auto observe = lw::obs::summarize_samples(row.observe);
    const auto corroborate = lw::obs::summarize_samples(row.corroborate);
    const auto isolate = lw::obs::summarize_samples(row.isolate);
    char threshold[32];
    std::snprintf(threshold, sizeof(threshold), "%s=%g",
                  row.cell->param.c_str(), row.cell->value);
    std::printf("%-14s %-9s %-26s %-7llu %-8.3f %-8.3f "
                "%6.3f/%6.3f/%6.3f   %6.3f/%6.3f/%6.3f   "
                "%6.3f/%6.3f/%6.3f\n",
                row.mode.c_str(), row.cell->defense.c_str(), threshold,
                static_cast<unsigned long long>(latency.count), latency.p50,
                latency.p95, observe.mean, observe.p50, observe.p95,
                corroborate.mean, corroborate.p50, corroborate.p95,
                isolate.mean, isolate.p50, isolate.p95);
  }

  std::puts(
      "\nexpected shape: calibrated LITEWORP (C_t=24) sits at the (1, 1)\n"
      "corner of the ROC plane for both tunnel modes; loosening C_t to 12\n"
      "trades precision for latency, tightening to 36 delays isolation.\n"
      "The Z-score detector reaches the tunnel endpoints statistically —\n"
      "recall rises as z_threshold drops, with honest-node convictions the\n"
      "price below ~1.5. The leash never accuses (recall 0) but its\n"
      "wormhole-route column shows the prevention it buys per sync-error\n"
      "budget; 'none' anchors the undefended corner.");
  return bench::finish(args);
}
