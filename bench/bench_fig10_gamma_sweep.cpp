// Figure 10: detection probability (simulated and analytical) and
// isolation latency vs the detection confidence index gamma.
//
// Expected shape (paper, N_B = 15, M = 2): detection probability decreases
// as gamma grows (more guards must independently alert through collisions)
// while isolation latency increases but stays small (tens of seconds).
//
// Operationalization note: with unbounded observation time every guard of
// a relentlessly-cheating wormhole eventually alerts (re-alerting makes
// isolation a when, not an if), so "detection probability" is measured
// against a deadline — default 60 s after attack start, twice the paper's
// quoted worst-case latency — mirroring the paper's fixed-horizon runs.
//
//   ./bench_fig10_gamma_sweep [--runs=3] [--duration=600] [--nodes=100]
//                             [--nb=15] [--gamma_min=2] [--gamma_max=8]
//                             [--deadline=60] [--seed=500]
#include <cstdio>
#include <vector>

#include "analysis/coverage.h"
#include "scenario/runner.h"
#include "util/config.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const int runs = args.get_int("runs", 4);
  const double duration = args.get_double("duration", 800.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 100));
  const double nb = args.get_double("nb", 15.0);
  const int gamma_min = args.get_int("gamma_min", 2);
  const int gamma_max = args.get_int("gamma_max", 8);
  const double deadline = args.get_double("deadline", 60.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 500));

  std::puts("== Figure 10: detection probability and isolation latency vs "
            "gamma ==");
  std::printf("%zu nodes at N_B = %.0f, M = 2, %d run(s) per point, "
              "deadline %.0f s\n\n",
              nodes, nb, runs, deadline);

  lw::analysis::CoverageParams analytic;
  auto analytic_curve =
      lw::analysis::detection_vs_gamma(analytic, nb, gamma_min, gamma_max);

  std::printf("%-7s %-18s %-16s %s\n", "gamma", "sim P(det<deadline)",
              "ana P(detection)", "mean isolation latency [s]");
  for (int gamma = gamma_min; gamma <= gamma_max; ++gamma) {
    int within_deadline = 0;
    double latency_sum = 0.0;
    int latency_runs = 0;
    for (int run = 0; run < runs; ++run) {
      auto config = lw::scenario::ExperimentConfig::table2_defaults();
      config.node_count = nodes;
      config.target_neighbors = nb;
      config.duration = duration;
      config.malicious_count = 2;
      config.liteworp.detection_confidence = gamma;
      // Pin the fabricated link so the alerting-guard pool matches the
      // analysis' per-link geometry (g ~= 0.51 N_B); the default
      // randomized lie enlarges the pool and keeps detection at 1.0 for
      // every gamma.
      config.attack.fixed_fake_prev = true;
      // Disable the corroborated-threshold extension: the paper's guards
      // never lower their bar on hearsay, and with it enabled the
      // detection cascade erases the gamma sensitivity this figure is
      // about (see EXPERIMENTS.md for the with-extension numbers).
      config.liteworp.corroborated_threshold =
          config.liteworp.malc_threshold;
      config.seed = seed + static_cast<std::uint64_t>(run);
      config.finalize();
      auto result = lw::scenario::run_experiment(config);
      if (result.isolation_latency) {
        latency_sum += *result.isolation_latency;
        ++latency_runs;
        if (*result.isolation_latency <= deadline) ++within_deadline;
      }
    }
    const double ana =
        analytic_curve[static_cast<std::size_t>(gamma - gamma_min)].y;
    if (latency_runs > 0) {
      std::printf("%-7d %-18.3f %-16.3f %.1f\n", gamma,
                  static_cast<double>(within_deadline) / runs, ana,
                  latency_sum / latency_runs);
    } else {
      std::printf("%-7d %-18.3f %-16.3f (never completely isolated)\n",
                  gamma, 0.0, ana);
    }
  }

  std::puts("\nexpected shape: detection probability decreases in gamma and\n"
            "tracks the analytic curve; isolation latency grows\n"
            "monotonically (paper: < 30 s — our re-alerting converges slow\n"
            "tails the paper's one-shot alerts abandoned, which stretches\n"
            "the high-gamma means). Rerun without the deadline flag to see\n"
            "that, given time, every gamma eventually isolates.");
  return 0;
}
