// Figure 10: detection probability (simulated and analytical) and
// isolation latency vs the detection confidence index gamma.
//
// Expected shape (paper, N_B = 15, M = 2): detection probability decreases
// as gamma grows (more guards must independently alert through collisions)
// while isolation latency increases but stays small (tens of seconds).
//
// Operationalization note: with unbounded observation time every guard of
// a relentlessly-cheating wormhole eventually alerts (re-alerting makes
// isolation a when, not an if), so "detection probability" is measured
// against a deadline — default 60 s after attack start, twice the paper's
// quoted worst-case latency — mirroring the paper's fixed-horizon runs.
//
//   ./bench_fig10_gamma_sweep [--runs=4] [--seed=500] [--threads=1]
//                             [--json] [--duration=800] [--nodes=100]
//                             [--nb=15] [--gamma_min=2] [--gamma_max=8]
//                             [--deadline=60]
//
// Standard flags (bench_common.h): --runs replicas per gamma, --seed base
// seed, --threads sweep workers (results identical for any count), --json
// machine-readable sweep dump (per-replica isolation latencies included).
#include <cstdio>
#include <vector>

#include "analysis/coverage.h"
#include "bench_common.h"
#include "scenario/sweep.h"
#include "util/config.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 4, 500);
  const double duration = args.get_double("duration", 800.0);
  const std::size_t nodes =
      static_cast<std::size_t>(args.get_int("nodes", 100));
  const double nb = args.get_double("nb", 15.0);
  const int gamma_min = args.get_int("gamma_min", 2);
  const int gamma_max = args.get_int("gamma_max", 8);
  const double deadline = args.get_double("deadline", 60.0);
  if (int status = bench::finish(args)) return status;

  lw::scenario::SweepSpec spec;
  spec.base = lw::scenario::ExperimentConfig::table2_defaults();
  spec.base.node_count = nodes;
  spec.base.target_neighbors = nb;
  spec.base.duration = duration;
  spec.base.malicious_count = 2;
  // Pin the fabricated link so the alerting-guard pool matches the
  // analysis' per-link geometry (g ~= 0.51 N_B); the default randomized
  // lie enlarges the pool and keeps detection at 1.0 for every gamma.
  spec.base.attack.fixed_fake_prev = true;
  // Disable the corroborated-threshold extension: the paper's guards never
  // lower their bar on hearsay, and with it enabled the detection cascade
  // erases the gamma sensitivity this figure is about (see EXPERIMENTS.md
  // for the with-extension numbers).
  spec.base.defense.liteworp.corroborated_threshold =
      spec.base.defense.liteworp.malc_threshold;
  for (int gamma = gamma_min; gamma <= gamma_max; ++gamma) {
    spec.points.push_back(
        {"gamma=" + std::to_string(gamma),
         [gamma](lw::scenario::ExperimentConfig& c) {
           c.defense.liteworp.detection_confidence = gamma;
         },
         0});
  }
  const auto result = bench::run_sweep(common, std::move(spec));

  if (common.json) {
    std::puts(bench::sweep_json(common, result).c_str());
    return bench::finish(args);
  }

  std::puts("== Figure 10: detection probability and isolation latency vs "
            "gamma ==");
  std::printf("%zu nodes at N_B = %.0f, M = 2, %d run(s) per point, "
              "deadline %.0f s, %d thread(s), %.1f s wall\n\n",
              nodes, nb, common.runs, deadline, result.threads_used,
              result.wall_seconds);

  lw::analysis::CoverageParams analytic;
  auto analytic_curve =
      lw::analysis::detection_vs_gamma(analytic, nb, gamma_min, gamma_max);

  std::printf("%-7s %-18s %-16s %s\n", "gamma", "sim P(det<deadline)",
              "ana P(detection)", "mean isolation latency [s]");
  for (int gamma = gamma_min; gamma <= gamma_max; ++gamma) {
    const auto& point =
        result.points[static_cast<std::size_t>(gamma - gamma_min)];
    int within_deadline = 0;
    double latency_sum = 0.0;
    int latency_runs = 0;
    for (const auto& replica : point.replicas) {
      if (replica.isolation_latency) {
        latency_sum += *replica.isolation_latency;
        ++latency_runs;
        if (*replica.isolation_latency <= deadline) ++within_deadline;
      }
    }
    const double ana =
        analytic_curve[static_cast<std::size_t>(gamma - gamma_min)].y;
    if (latency_runs > 0) {
      std::printf("%-7d %-18.3f %-16.3f %.1f\n", gamma,
                  static_cast<double>(within_deadline) / common.runs, ana,
                  latency_sum / latency_runs);
    } else {
      std::printf("%-7d %-18.3f %-16.3f (never completely isolated)\n",
                  gamma, 0.0, ana);
    }
  }

  std::puts("\nexpected shape: detection probability decreases in gamma and\n"
            "tracks the analytic curve; isolation latency grows\n"
            "monotonically (paper: < 30 s — our re-alerting converges slow\n"
            "tails the paper's one-shot alerts abandoned, which stretches\n"
            "the high-gamma means). Rerun without the deadline flag to see\n"
            "that, given time, every gamma eventually isolates.");
  return bench::finish(args);
}
