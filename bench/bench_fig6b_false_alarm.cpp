// Figure 6(b): probability of false alarm vs number of neighbors.
//
// Same parameters as 6(a); the per-packet false-suspicion probability is
// P_FA = P_C (1 - P_C) — the guard misses the handoff but hears the
// forward. Expected shape (paper): non-monotone and negligible everywhere
// (the paper plots it scaled by 1e-3).
//
//   ./bench_fig6b_false_alarm [--nb_min=3] [--nb_max=60] [--step=1]
//                             [--json]
//
// Standard flags (bench_common.h): --json emits the curve as JSON rows;
// --runs/--seed/--threads are accepted for CLI uniformity but unused
// (closed-form evaluation, no stochastic runs).
#include <cstdio>

#include "analysis/coverage.h"
#include "bench_common.h"
#include "util/config.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 1, 0);
  lw::analysis::CoverageParams params;
  const double nb_min = args.get_double("nb_min", 3.0);
  const double nb_max = args.get_double("nb_max", 60.0);
  const double step = args.get_double("step", 1.0);

  if (common.json) {
    auto curve =
        lw::analysis::false_alarm_vs_neighbors(params, nb_min, nb_max, step);
    bench::JsonRows rows;
    for (const auto& point : curve) {
      const double pc = lw::analysis::collision_probability(params, point.x);
      rows.field("nb", point.x)
          .field("collision_probability", pc)
          .field("packet_false_suspicion",
                 lw::analysis::false_suspicion_probability(pc))
          .field("guard_false_alarm",
                 lw::analysis::guard_false_alarm_probability(params, pc))
          .field("false_alarm_probability", point.y);
      rows.end_row();
    }
    std::puts(rows.str().c_str());
    return bench::finish(args);
  }

  std::puts("== Figure 6(b): P(false alarm) vs number of neighbors ==");
  std::printf("params: kappa=%d k=%d gamma=%d P_FA(packet)=P_C(1-P_C)\n\n",
              params.window_events, params.per_guard_threshold,
              params.detection_confidence);
  std::printf("%-8s %-10s %-14s %-16s %s\n", "N_B", "P_C", "P_FA(packet)",
              "P_guard_false", "P(false alarm) x1e3");

  auto curve =
      lw::analysis::false_alarm_vs_neighbors(params, nb_min, nb_max, step);
  double worst = 0.0;
  double worst_nb = 0.0;
  for (const auto& point : curve) {
    const double pc = lw::analysis::collision_probability(params, point.x);
    std::printf("%-8.1f %-10.3f %-14.4f %-16.6f %.6f\n", point.x, pc,
                lw::analysis::false_suspicion_probability(pc),
                lw::analysis::guard_false_alarm_probability(params, pc),
                point.y * 1e3);
    if (point.y > worst) {
      worst = point.y;
      worst_nb = point.x;
    }
  }
  std::printf("\nworst case: %.3e at N_B = %.1f "
              "(paper: negligible everywhere, non-monotone)\n",
              worst, worst_nb);
  return bench::finish(args);
}
