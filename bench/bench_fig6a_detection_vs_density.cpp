// Figure 6(a): probability of wormhole detection vs number of neighbors.
//
// Analytical model of Section 5.1 with the figure's parameters: kappa = 7
// malicious events per window, a guard alerts after catching k = 5 of
// them, gamma = 3 guards must alert, P_C = 0.05 at N_B = 3 and growing
// linearly with density.
//
// Expected shape (paper): rises with density (more guards), peaks near
// certainty, then falls rapidly once collisions swamp the guards.
//
//   ./bench_fig6a_detection_vs_density [--nb_min=3] [--nb_max=40]
//                                      [--step=1] [--gamma=3] [--json]
//
// Standard flags (bench_common.h): --json emits the curve as JSON rows;
// --runs/--seed/--threads are accepted for CLI uniformity but unused
// (closed-form evaluation, no stochastic runs).
#include <cstdio>

#include "analysis/coverage.h"
#include "bench_common.h"
#include "util/config.h"

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 1, 0);
  lw::analysis::CoverageParams params;
  params.detection_confidence = args.get_int("gamma", 3);
  const double nb_min = args.get_double("nb_min", 3.0);
  const double nb_max = args.get_double("nb_max", 40.0);
  const double step = args.get_double("step", 1.0);

  if (common.json) {
    auto curve =
        lw::analysis::detection_vs_neighbors(params, nb_min, nb_max, step);
    bench::JsonRows rows;
    for (const auto& point : curve) {
      const double pc = lw::analysis::collision_probability(params, point.x);
      rows.field("nb", point.x)
          .field("collision_probability", pc)
          .field("expected_guards", lw::analysis::expected_guards(point.x))
          .field("guard_alert_probability",
                 lw::analysis::guard_alert_probability(params, pc))
          .field("detection_probability", point.y);
      rows.end_row();
    }
    std::puts(rows.str().c_str());
    return bench::finish(args);
  }

  std::puts("== Figure 6(a): P(wormhole detection) vs number of neighbors ==");
  std::printf("params: kappa=%d k=%d gamma=%d P_C=%.2f@N_B=%.0f (linear)\n\n",
              params.window_events, params.per_guard_threshold,
              params.detection_confidence, params.pc_reference,
              params.pc_reference_neighbors);
  std::printf("%-8s %-8s %-10s %-12s %s\n", "N_B", "P_C", "guards",
              "P_alert", "P(detection)");

  auto curve =
      lw::analysis::detection_vs_neighbors(params, nb_min, nb_max, step);
  for (const auto& point : curve) {
    const double pc = lw::analysis::collision_probability(params, point.x);
    std::printf("%-8.1f %-8.3f %-10.2f %-12.4f %.4f\n", point.x, pc,
                lw::analysis::expected_guards(point.x),
                lw::analysis::guard_alert_probability(params, pc), point.y);
  }

  // Locate the peak for the summary line.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].y > curve[peak].y) peak = i;
  }
  std::printf("\npeak: P(detection) = %.4f at N_B = %.1f "
              "(paper: rises, peaks near 1, then falls)\n",
              curve[peak].y, curve[peak].x);
  return bench::finish(args);
}
