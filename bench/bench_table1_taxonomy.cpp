// Table 1: summary of wormhole attack modes.
//
// Regenerates the paper's taxonomy table from the attack-mode registry and
// cross-checks each row against a live mini-simulation: the mode must do
// damage against the baseline with exactly its minimum number of
// compromised nodes, and be neutralized by LITEWORP iff the paper says so.
//
//   ./bench_table1_taxonomy [--verify=true] [--duration=400]
#include <cstdio>
#include <string>

#include "attack/modes.h"
#include "scenario/runner.h"
#include "util/config.h"

namespace {

lw::scenario::RunResult run_mode(lw::attack::WormholeMode mode,
                                 int malicious, bool liteworp,
                                 double duration) {
  auto config = lw::scenario::ExperimentConfig::table2_defaults();
  config.node_count = 60;
  config.seed = mode == lw::attack::WormholeMode::kRushing ? 28 : 21;
  config.duration = duration;
  config.malicious_count = static_cast<std::size_t>(malicious);
  config.attack.mode = mode;
  config.liteworp.enabled = liteworp;
  config.finalize();
  return lw::scenario::run_experiment(config);
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bool verify = args.get_bool("verify", true);
  const double duration = args.get_double("duration", 400.0);

  std::puts("== Table 1: Summary of wormhole attack modes ==\n");
  std::printf("%-26s %-12s %-20s %s\n", "Mode name", "Min #nodes",
              "Special requirements", "Handled by LITEWORP");
  std::printf("%-26s %-12s %-20s %s\n", "---------", "----------",
              "--------------------", "-------------------");
  for (const auto& row : lw::attack::attack_mode_table()) {
    std::printf("%-26s %-12d %-20s %s\n", std::string(row.name).c_str(),
                row.min_compromised_nodes,
                std::string(row.special_requirements).c_str(),
                row.detected_by_liteworp ? "yes" : "NO (Sec 4.2.3)");
  }

  if (!verify) return 0;

  std::puts("\n== Live verification (60-node field, minimum attackers) ==\n");
  std::printf("%-26s | %-21s | %-21s | %s\n", "",
              "wormhole routes", "data drops", "LITEWORP");
  std::printf("%-26s | %-10s %-10s | %-10s %-10s | %s\n", "Mode", "baseline",
              "LITEWORP", "baseline", "LITEWORP", "isolated");
  for (const auto& row : lw::attack::attack_mode_table()) {
    auto baseline = run_mode(row.mode, row.min_compromised_nodes, false,
                             duration);
    auto guarded = run_mode(row.mode, row.min_compromised_nodes, true,
                            duration);
    // Rushing forges no link; its footprint is captured transit routes.
    const bool rushing = row.mode == lw::attack::WormholeMode::kRushing;
    std::printf("%-26s | %-10llu %-10llu | %-10llu %-10llu | %zu/%zu\n",
                std::string(row.name).c_str(),
                static_cast<unsigned long long>(
                    rushing ? baseline.routes_via_malicious
                            : baseline.wormhole_routes),
                static_cast<unsigned long long>(
                    rushing ? guarded.routes_via_malicious
                            : guarded.wormhole_routes),
                static_cast<unsigned long long>(
                    baseline.data_dropped_malicious),
                static_cast<unsigned long long>(
                    guarded.data_dropped_malicious),
                guarded.malicious_isolated, guarded.malicious_count);
  }
  std::puts(
      "\nExpected shape: every mode forges or captures routes at baseline.\n"
      "LITEWORP's response differs by mode, as in the paper:\n"
      "  - encapsulation / out-of-band: detected by guards -> isolated;\n"
      "  - high power / relay: PREVENTED by the neighbor checks (wormhole\n"
      "    routes ~ 0; the insider is not isolated but its wormhole is\n"
      "    dead; residual drops are plain insider black-holing of routes\n"
      "    it legitimately sits on, which local monitoring of control\n"
      "    traffic does not claim to catch);\n"
      "  - protocol deviation: unhandled (the paper's stated limitation).");
  return 0;
}
