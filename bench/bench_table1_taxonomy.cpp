// Table 1: summary of wormhole attack modes.
//
// Regenerates the paper's taxonomy table from the attack-mode registry and
// cross-checks each row against a live mini-simulation: the mode must do
// damage against the baseline with exactly its minimum number of
// compromised nodes, and be neutralized by LITEWORP iff the paper says so.
//
//   ./bench_table1_taxonomy [--runs=1] [--seed=21] [--threads=1] [--json]
//                           [--verify=true] [--duration=400]
//
// Standard flags (bench_common.h): --runs replicas per (mode, defense)
// cell, --seed base seed (rushing runs seed+7, a topology where its
// timing window is open), --threads sweep workers (results identical for
// any count), --json machine-readable sweep dump of the verification
// runs.
#include <cstdio>
#include <string>

#include "attack/modes.h"
#include "bench_common.h"
#include "scenario/sweep.h"
#include "util/config.h"

namespace {

double replica_mean(const lw::scenario::SweepPointResult& point,
                    std::uint64_t lw::scenario::RunResult::*field) {
  double sum = 0.0;
  for (const auto& r : point.replicas) {
    sum += static_cast<double>(r.*field);
  }
  return sum / static_cast<double>(point.replicas.size());
}

double mean_isolated(const lw::scenario::SweepPointResult& point) {
  double sum = 0.0;
  for (const auto& r : point.replicas) {
    sum += static_cast<double>(r.malicious_isolated);
  }
  return sum / static_cast<double>(point.replicas.size());
}

}  // namespace

int main(int argc, char** argv) {
  lw::Config args = lw::Config::from_args(argc, argv);
  const bench::Common common = bench::parse_common(args, 1, 21);
  const bool verify = args.get_bool("verify", true);
  const double duration = args.get_double("duration", 400.0);
  if (int status = bench::finish(args)) return status;

  if (!common.json) {
    std::puts("== Table 1: Summary of wormhole attack modes ==\n");
    std::printf("%-26s %-12s %-20s %s\n", "Mode name", "Min #nodes",
                "Special requirements", "Handled by LITEWORP");
    std::printf("%-26s %-12s %-20s %s\n", "---------", "----------",
                "--------------------", "-------------------");
    for (const auto& row : lw::attack::attack_mode_table()) {
      std::printf("%-26s %-12d %-20s %s\n", std::string(row.name).c_str(),
                  row.min_compromised_nodes,
                  std::string(row.special_requirements).c_str(),
                  row.detected_by_liteworp ? "yes" : "NO (Sec 4.2.3)");
    }
    if (!verify) return bench::finish(args);
  }

  lw::scenario::SweepSpec spec;
  spec.base = lw::scenario::ExperimentConfig::table2_defaults();
  spec.base.node_count = 60;
  spec.base.duration = duration;
  for (const auto& row : lw::attack::attack_mode_table()) {
    // Rushing's timing window is narrow; its historical seed is 28 against
    // the default base of 21.
    const std::uint64_t offset =
        row.mode == lw::attack::WormholeMode::kRushing ? 7 : 0;
    for (bool liteworp : {false, true}) {
      const auto mode = row.mode;
      const int malicious = row.min_compromised_nodes;
      spec.points.push_back(
          {std::string(row.name) + (liteworp ? " / liteworp" : " / baseline"),
           [mode, malicious, liteworp](lw::scenario::ExperimentConfig& c) {
             c.malicious_count = static_cast<std::size_t>(malicious);
             c.attack.mode = mode;
             c.defense.name = liteworp ? "liteworp" : "none";
           },
           offset});
    }
  }
  const auto result = bench::run_sweep(common, std::move(spec));

  if (common.json) {
    std::puts(bench::sweep_json(common, result).c_str());
    return bench::finish(args);
  }

  std::puts("\n== Live verification (60-node field, minimum attackers) ==\n");
  std::printf("%-26s | %-21s | %-21s | %s\n", "",
              "wormhole routes", "data drops", "LITEWORP");
  std::printf("%-26s | %-10s %-10s | %-10s %-10s | %s\n", "Mode", "baseline",
              "LITEWORP", "baseline", "LITEWORP", "isolated");
  std::size_t p = 0;
  for (const auto& row : lw::attack::attack_mode_table()) {
    const auto& baseline = result.points[p];
    const auto& guarded = result.points[p + 1];
    p += 2;
    // Rushing forges no link; its footprint is captured transit routes.
    const auto footprint =
        row.mode == lw::attack::WormholeMode::kRushing
            ? &lw::scenario::RunResult::routes_via_malicious
            : &lw::scenario::RunResult::wormhole_routes;
    std::printf("%-26s | %-10.0f %-10.0f | %-10.0f %-10.0f | %.1f/%zu\n",
                std::string(row.name).c_str(),
                replica_mean(baseline, footprint),
                replica_mean(guarded, footprint),
                replica_mean(baseline,
                             &lw::scenario::RunResult::data_dropped_malicious),
                replica_mean(guarded,
                             &lw::scenario::RunResult::data_dropped_malicious),
                mean_isolated(guarded),
                guarded.replicas.front().malicious_count);
  }
  std::puts(
      "\nExpected shape: every mode forges or captures routes at baseline.\n"
      "LITEWORP's response differs by mode, as in the paper:\n"
      "  - encapsulation / out-of-band: detected by guards -> isolated;\n"
      "  - high power / relay: PREVENTED by the neighbor checks (wormhole\n"
      "    routes ~ 0; the insider is not isolated but its wormhole is\n"
      "    dead; residual drops are plain insider black-holing of routes\n"
      "    it legitimately sits on, which local monitoring of control\n"
      "    traffic does not claim to catch);\n"
      "  - protocol deviation: unhandled (the paper's stated limitation).");
  return bench::finish(args);
}
